//! The HPC/database workload set (§V): Camel, HashJoin-2/8, Kangaroo,
//! NAS-CG, NAS-IS, and HPCC randacc. (Graph500 seq-CSR lives in
//! [`crate::kernels::gap::graph500`].)

use crate::rng::Rng64;
use crate::workload::{Check, Scale, Workload};
use svr_isa::{AluOp, ArchState, Assembler, Cond, Reg};
use svr_mem::MemImage;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Camel (Ainsworth & Jones): a stride-indirect gather with a few ALU
/// operations of "hump" compute per element.
pub fn camel(scale: Scale) -> Workload {
    let n = scale.elems() as u64;
    let mut rng = Rng64::new(7);
    let idx: Vec<u64> = (0..n).map(|_| rng.below(n)).collect();
    let data: Vec<u64> = (0..n).map(|i| i * 3 + 1).collect();
    let mut img = MemImage::new();
    let ib = img.alloc_array(&idx);
    let db = img.alloc_array(&data);

    let (rib, rdb, ri, rn, rt, rv, racc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let mut asm = Assembler::new("camel");
    let top = asm.named_label("top");
    asm.bind(top);
    asm.ldx(rt, rib, ri, 3); // t = idx[i]       (striding)
    asm.ldx(rv, rdb, rt, 3); // v = data[t]      (indirect)
                             // Hump compute: mix the gathered value.
    asm.alui(AluOp::Mul, rv, rv, 0x45d9f3b);
    asm.alui(AluOp::Srl, rt, rv, 16);
    asm.alu(AluOp::Xor, rv, rv, rt);
    asm.alu(AluOp::Add, racc, racc, rv);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();

    let expected = idx
        .iter()
        .map(|&t| {
            let v = data[t as usize].wrapping_mul(0x45d9f3b);
            v ^ (v >> 16)
        })
        .fold(0u64, |a, b| a.wrapping_add(b));

    let mut arch = ArchState::new();
    arch.set_reg(rib, ib);
    arch.set_reg(rdb, db);
    arch.set_reg(rn, n);
    Workload {
        name: "Camel".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

/// Hash-join probe [Blanas+ SIGMOD'11] with `bucket` slots per bucket
/// (paper: bucket sizes 2 and 8). The probe key stream strides; the bucket
/// scan is a short divergent inner loop with early exit — the case where
/// SVR's mask-only control-flow handling costs performance (§VI-D).
pub fn hashjoin(bucket: usize, scale: Scale) -> Workload {
    let n = scale.elems() as u64; // probe tuples
    let nbuckets = (scale.elems() / 2).next_power_of_two() as u64;
    let mask = nbuckets - 1;
    let mut rng = Rng64::new(11 + bucket as u64);

    // Build relation: fill each bucket with up to `bucket` keys.
    let mut tab_keys = vec![u64::MAX; (nbuckets as usize) * bucket];
    let mut tab_vals = vec![0u64; (nbuckets as usize) * bucket];
    let mut build_keys = Vec::new();
    for _ in 0..(nbuckets as usize * bucket / 2) {
        let k: u64 = rng.range(1, u64::MAX / 2);
        let h = (hash64(k) & mask) as usize;
        for s in 0..bucket {
            if tab_keys[h * bucket + s] == u64::MAX {
                tab_keys[h * bucket + s] = k;
                tab_vals[h * bucket + s] = k % 997;
                build_keys.push(k);
                break;
            }
        }
    }
    // Probe keys: half hits, half misses.
    let probe: Vec<u64> = (0..n)
        .map(|i| {
            if i % 2 == 0 && !build_keys.is_empty() {
                build_keys[rng.index(build_keys.len())]
            } else {
                rng.range(1, u64::MAX / 2)
            }
        })
        .collect();

    let mut img = MemImage::new();
    let pb = img.alloc_array(&probe);
    let kb = img.alloc_array(&tab_keys);
    let vb = img.alloc_array(&tab_vals);

    let (rpb, rkb, rvb, ri, rn, rk, rh, rs, rslot, rtk, rtv, racc, rt) = (
        r(1),
        r(2),
        r(3),
        r(4),
        r(5),
        r(6),
        r(7),
        r(8),
        r(9),
        r(10),
        r(11),
        r(12),
        r(13),
    );

    let mut asm = Assembler::new("hj");
    let top = asm.named_label("top");
    let scan = asm.named_label("scan");
    let no_match = asm.named_label("no_match");
    let found = asm.named_label("found");
    let next_tuple = asm.label(); // binds at the same pc as no_match
    asm.bind(top);
    asm.ldx(rk, rpb, ri, 3); // k = probe[i]     (striding)
                             // h = hash(k) & mask
    asm.alui(AluOp::Mul, rh, rk, 0x9E3779B97F4A7C15u64 as i64);
    asm.alui(AluOp::Srl, rh, rh, 28);
    asm.alui(AluOp::And, rh, rh, mask as i64);
    asm.alui(AluOp::Mul, rslot, rh, (bucket * 8) as i64);
    asm.li(rs, 0);
    asm.bind(scan);
    asm.cmpi(rs, bucket as i64);
    asm.b(Cond::Geu, no_match);
    asm.alu(AluOp::Add, rt, rkb, rslot);
    asm.ldx(rtk, rt, rs, 3); // tab_keys[h*bucket + s]   (indirect)
    asm.cmp(rtk, rk);
    asm.b(Cond::Eq, found);
    asm.alui(AluOp::Add, rs, rs, 1);
    asm.j(scan);
    asm.bind(found);
    asm.alu(AluOp::Add, rt, rvb, rslot);
    asm.ldx(rtv, rt, rs, 3); // payload
    asm.alu(AluOp::Add, racc, racc, rtv);
    asm.bind(no_match);
    asm.bind(next_tuple);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();

    // Reference.
    let mut expected = 0u64;
    for &k in &probe {
        let h = (hash64(k) & mask) as usize;
        for s in 0..bucket {
            if tab_keys[h * bucket + s] == k {
                expected = expected.wrapping_add(tab_vals[h * bucket + s]);
                break;
            }
        }
    }

    let mut arch = ArchState::new();
    arch.set_reg(rpb, pb);
    arch.set_reg(rkb, kb);
    arch.set_reg(rvb, vb);
    arch.set_reg(rn, n);
    Workload {
        name: format!("HJ{bucket}"),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

/// Kangaroo (derived from NAS-IS): two levels of indirection,
/// `count[k2[k1[i]]] += 1`. IMP only covers one level; SVR chases the chain.
pub fn kangaroo(scale: Scale) -> Workload {
    let n = scale.elems() as u64;
    let mut rng = Rng64::new(23);
    let k1: Vec<u64> = (0..n).map(|_| rng.below(n)).collect();
    let k2: Vec<u64> = (0..n).map(|_| rng.below(n)).collect();
    let mut img = MemImage::new();
    let b1 = img.alloc_array(&k1);
    let b2 = img.alloc_array(&k2);
    let cb = img.alloc_words(n);

    let (rb1, rb2, rcb, ri, rn, ra, rbv, rc, racc) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
    let mut asm = Assembler::new("kangaroo");
    let top = asm.named_label("top");
    asm.bind(top);
    asm.ldx(ra, rb1, ri, 3); // a = k1[i]        (striding)
    asm.ldx(rbv, rb2, ra, 3); // b = k2[a]       (indirect level 1)
    asm.ldx(rc, rcb, rbv, 3); // c = count[b]    (indirect level 2)
    asm.alu(AluOp::Add, racc, racc, rc);
    asm.alui(AluOp::Add, rc, rc, 1);
    asm.stx(rc, rcb, rbv, 3);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();

    let mut count = vec![0u64; n as usize];
    let mut expected = 0u64;
    for i in 0..n as usize {
        let b = k2[k1[i] as usize] as usize;
        expected = expected.wrapping_add(count[b]);
        count[b] += 1;
    }

    let mut arch = ArchState::new();
    arch.set_reg(rb1, b1);
    arch.set_reg(rb2, b2);
    arch.set_reg(rcb, cb);
    arch.set_reg(rn, n);
    Workload {
        name: "Kangr".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

/// NAS Conjugate Gradient's hot loop: sparse matrix-vector product over CSR
/// (`sum += val[j] * x[col[j]]`).
pub fn nas_cg(scale: Scale) -> Workload {
    let rows = scale.nodes() as u64;
    let nnz_per_row = 12u64;
    let mut rng = Rng64::new(31);
    let mut offsets = vec![0u64; rows as usize + 1];
    for i in 0..rows as usize {
        offsets[i + 1] = offsets[i] + nnz_per_row;
    }
    let nnz = offsets[rows as usize];
    let cols: Vec<u64> = (0..nnz).map(|_| rng.below(rows)).collect();
    let vals: Vec<u64> = (0..nnz).map(|i| i % 9 + 1).collect();
    let x: Vec<u64> = (0..rows).map(|i| i % 31 + 1).collect();
    let mut img = MemImage::new();
    let ob = img.alloc_array(&offsets);
    let cbase = img.alloc_array(&cols);
    let vbase = img.alloc_array(&vals);
    let xb = img.alloc_array(&x);
    let yb = img.alloc_words(rows);

    let (rob, rcbase, rvbase, rxb, ryb) = (r(1), r(2), r(3), r(4), r(5));
    let (rrow, rn, rj, rend, rcol, rval, rxv, rsum, racc, rt) = (
        r(6),
        r(7),
        r(8),
        r(9),
        r(10),
        r(11),
        r(12),
        r(13),
        r(14),
        r(15),
    );

    let mut asm = Assembler::new("cg");
    let outer = asm.named_label("outer");
    let inner = asm.named_label("inner");
    let after = asm.named_label("after");
    asm.bind(outer);
    asm.ldx(rj, rob, rrow, 3);
    asm.alui(AluOp::Add, rt, rrow, 1);
    asm.ldx(rend, rob, rt, 3);
    asm.li(rsum, 0);
    asm.cmp(rj, rend);
    asm.b(Cond::Geu, after);
    asm.bind(inner);
    asm.ldx(rcol, rcbase, rj, 3); // col[j]   (striding)
    asm.ldx(rval, rvbase, rj, 3); // val[j]   (striding)
    asm.ldx(rxv, rxb, rcol, 3); // x[col[j]]  (indirect)
    asm.alu(AluOp::Mul, rxv, rxv, rval);
    asm.alu(AluOp::Add, rsum, rsum, rxv);
    asm.alui(AluOp::Add, rj, rj, 1);
    asm.cmp(rj, rend);
    asm.b(Cond::Ltu, inner);
    asm.bind(after);
    asm.stx(rsum, ryb, rrow, 3);
    asm.alu(AluOp::Add, racc, racc, rsum);
    asm.alui(AluOp::Add, rrow, rrow, 1);
    asm.cmp(rrow, rn);
    asm.b(Cond::Ltu, outer);
    asm.halt();

    let mut expected = 0u64;
    for i in 0..rows as usize {
        for j in offsets[i] as usize..offsets[i + 1] as usize {
            expected = expected.wrapping_add(vals[j].wrapping_mul(x[cols[j] as usize]));
        }
    }

    let mut arch = ArchState::new();
    arch.set_reg(rob, ob);
    arch.set_reg(rcbase, cbase);
    arch.set_reg(rvbase, vbase);
    arch.set_reg(rxb, xb);
    arch.set_reg(ryb, yb);
    arch.set_reg(rn, rows);
    Workload {
        name: "NAS-CG".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

/// NAS Integer Sort's ranking loop: `count[key[i]] += 1` over a large key
/// range (stride load of keys feeding an indirect read-modify-write).
pub fn nas_is(scale: Scale) -> Workload {
    let n = scale.elems() as u64;
    let range = (scale.elems() as u64).next_power_of_two();
    let mut rng = Rng64::new(37);
    let keys: Vec<u64> = (0..n).map(|_| rng.below(range)).collect();
    let mut img = MemImage::new();
    let kb = img.alloc_array(&keys);
    let cb = img.alloc_words(range);

    let (rkb, rcb, ri, rn, rk, rc, racc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let mut asm = Assembler::new("is");
    let top = asm.named_label("top");
    asm.bind(top);
    asm.ldx(rk, rkb, ri, 3); // k = key[i]      (striding)
    asm.ldx(rc, rcb, rk, 3); // c = count[k]    (indirect)
    asm.alu(AluOp::Add, racc, racc, rc);
    asm.alui(AluOp::Add, rc, rc, 1);
    asm.stx(rc, rcb, rk, 3);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();

    let mut count = vec![0u64; range as usize];
    let mut expected = 0u64;
    for &k in &keys {
        expected = expected.wrapping_add(count[k as usize]);
        count[k as usize] += 1;
    }

    let mut arch = ArchState::new();
    arch.set_reg(rkb, kb);
    arch.set_reg(rcb, cb);
    arch.set_reg(rn, n);
    Workload {
        name: "NAS-IS".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

/// HPCC RandomAccess (GUPS): `table[ran[i] & mask] ^= ran[i]`. The masked
/// value transformation defeats IMP's affine matching; SVR simply executes
/// the real chain.
pub fn randacc(scale: Scale) -> Workload {
    let n = scale.elems() as u64;
    let table_size = (scale.elems() as u64 * 2).next_power_of_two();
    let mask = table_size - 1;
    let mut rng = Rng64::new(41);
    let ran: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let mut img = MemImage::new();
    let rb = img.alloc_array(&ran);
    let tb = img.alloc_words(table_size);

    let (rrb, rtb, ri, rn, rt, ra, rold, racc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut asm = Assembler::new("randacc");
    let top = asm.named_label("top");
    asm.bind(top);
    asm.ldx(rt, rrb, ri, 3); // t = ran[i]         (striding)
    asm.alui(AluOp::And, ra, rt, mask as i64);
    asm.ldx(rold, rtb, ra, 3); // old = table[a]   (indirect)
    asm.alu(AluOp::Xor, racc, racc, rold);
    asm.alu(AluOp::Xor, rold, rold, rt);
    asm.stx(rold, rtb, ra, 3);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();

    let mut table = vec![0u64; table_size as usize];
    let mut expected = 0u64;
    for &t in &ran {
        let a = (t & mask) as usize;
        expected ^= table[a];
        table[a] ^= t;
    }

    let mut arch = ArchState::new();
    arch.set_reg(rrb, rb);
    arch.set_reg(rtb, tb);
    arch.set_reg(rn, n);
    Workload {
        name: "Randacc".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

fn hash64(k: u64) -> u64 {
    k.wrapping_mul(0x9E3779B97F4A7C15) >> 28
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Scale;

    fn run_functional(w: &Workload) -> bool {
        let (p, mut img, mut arch) = w.instantiate();
        arch.run(&p, &mut img, 200_000_000);
        assert!(arch.halted(), "{} did not halt", w.name);
        w.verify(&img, &arch)
    }

    #[test]
    fn camel_correct() {
        assert!(run_functional(&camel(Scale::Tiny)));
    }

    #[test]
    fn hashjoin_2_and_8_correct() {
        assert!(run_functional(&hashjoin(2, Scale::Tiny)));
        assert!(run_functional(&hashjoin(8, Scale::Tiny)));
    }

    #[test]
    fn kangaroo_correct() {
        assert!(run_functional(&kangaroo(Scale::Tiny)));
    }

    #[test]
    fn nas_cg_correct() {
        assert!(run_functional(&nas_cg(Scale::Tiny)));
    }

    #[test]
    fn nas_is_correct() {
        assert!(run_functional(&nas_is(Scale::Tiny)));
    }

    #[test]
    fn randacc_correct() {
        assert!(run_functional(&randacc(Scale::Tiny)));
    }

    #[test]
    fn hashjoin_has_matches() {
        let w = hashjoin(2, Scale::Tiny);
        if let Check::Reg(_, v) = w.check {
            assert!(v > 0, "join should produce matches");
        } else {
            panic!("expected reg check");
        }
    }
}
