//! "SPEC-like" regular workloads for Fig. 14: 23 kernels named after the
//! SPECrate 2017 suite, none of which exhibits the stride→indirect DRAM
//! pattern SVR targets. They exist to measure SVR's overhead when there is
//! nothing useful to vectorize (paper: ≈1 % average).
//!
//! Substitution (see DESIGN.md): we cannot run SPEC binaries on a custom
//! ISA; each name maps to a small regular kernel archetype (streaming,
//! stencil, dense compute, cached table lookups, ...) that exercises the
//! same SVR code path — the stride detector and accuracy ban keeping
//! runahead off or harmless.

use crate::workload::{Check, Scale, Workload};
use svr_isa::{AluOp, ArchState, Assembler, Cond, Reg};
use svr_mem::MemImage;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// The 23 SPECrate 2017 benchmark names of Fig. 14.
pub const SPEC_NAMES: [&str; 23] = [
    "perlbench",
    "gcc",
    "bwaves",
    "mcf",
    "cactuBSSN",
    "namd",
    "parest",
    "povray",
    "lbm",
    "omnetpp",
    "wrf",
    "xalancbmk",
    "x264",
    "blender",
    "cam4",
    "deepsjeng",
    "imagick",
    "leela",
    "nab",
    "exchange2",
    "fotonik3d",
    "roms",
    "xz",
];

/// Builds the stand-in kernel for one SPEC name.
///
/// # Panics
///
/// Panics if `name` is not in [`SPEC_NAMES`].
pub fn spec_like(name: &str, scale: Scale) -> Workload {
    let pos = SPEC_NAMES
        .iter()
        .position(|&n| n == name)
        .unwrap_or_else(|| panic!("unknown SPEC-like workload {name}"));
    let n = scale.elems() as u64;
    match pos % 6 {
        0 => compute_mix(name, n),
        1 => streaming_sum(name, n),
        2 => stencil(name, n),
        3 => saxpy(name, n),
        4 => cached_table_fsm(name, n),
        _ => strided_walk(name, n),
    }
}

/// Register-only compute chain (perlbench/povray/deepsjeng-ish).
fn compute_mix(name: &str, n: u64) -> Workload {
    let (ri, rn, rx, racc, rt) = (r(1), r(2), r(3), r(4), r(5));
    let mut asm = Assembler::new(name);
    let top = asm.label();
    asm.li(rx, 0x243F6A8885A308D3u64 as i64);
    asm.bind(top);
    asm.alui(AluOp::Mul, rx, rx, 6364136223846793005u64 as i64);
    asm.alui(AluOp::Add, rx, rx, 1442695040888963407u64 as i64);
    asm.alui(AluOp::Srl, rt, rx, 33);
    asm.alu(AluOp::Xor, rx, rx, rt);
    asm.alu(AluOp::Add, racc, racc, rx);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();

    let mut x = 0x243F6A8885A308D3u64;
    let mut acc = 0u64;
    for _ in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x ^= x >> 33;
        acc = acc.wrapping_add(x);
    }
    let mut arch = ArchState::new();
    arch.set_reg(rn, n);
    Workload {
        name: name.into(),
        program: asm.finish(),
        image: MemImage::new(),
        arch,
        check: Check::Reg(racc, acc),
    }
}

/// Sequential streaming reduction (bwaves/lbm-ish).
fn streaming_sum(name: &str, n: u64) -> Workload {
    let data: Vec<u64> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut img = MemImage::new();
    let db = img.alloc_array(&data);
    let (rdb, ri, rn, rv, racc) = (r(1), r(2), r(3), r(4), r(5));
    let mut asm = Assembler::new(name);
    let top = asm.label();
    asm.bind(top);
    asm.ldx(rv, rdb, ri, 3);
    asm.alu(AluOp::Add, racc, racc, rv);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();
    let acc = data.iter().fold(0u64, |a, &b| a.wrapping_add(b));
    let mut arch = ArchState::new();
    arch.set_reg(rdb, db);
    arch.set_reg(rn, n);
    Workload {
        name: name.into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, acc),
    }
}

/// 1-D three-point stencil into an output array (cactuBSSN/roms-ish).
fn stencil(name: &str, n: u64) -> Workload {
    let data: Vec<u64> = (0..n + 2).map(|i| i * 7 + 3).collect();
    let mut img = MemImage::new();
    let db = img.alloc_array(&data);
    let ob = img.alloc_words(n);
    let (rdb, rob, ri, rn, ra, rb, rc, racc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut asm = Assembler::new(name);
    let top = asm.label();
    asm.bind(top);
    asm.ldx(ra, rdb, ri, 3);
    asm.alui(AluOp::Add, rb, ri, 1);
    asm.ldx(rb, rdb, rb, 3);
    asm.alui(AluOp::Add, rc, ri, 2);
    asm.ldx(rc, rdb, rc, 3);
    asm.alu(AluOp::Add, ra, ra, rb);
    asm.alu(AluOp::Add, ra, ra, rc);
    asm.alui(AluOp::Srl, ra, ra, 1);
    asm.stx(ra, rob, ri, 3);
    asm.alu(AluOp::Add, racc, racc, ra);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();
    let mut acc = 0u64;
    for i in 0..n as usize {
        let v = (data[i].wrapping_add(data[i + 1]).wrapping_add(data[i + 2])) >> 1;
        acc = acc.wrapping_add(v);
    }
    let mut arch = ArchState::new();
    arch.set_reg(rdb, db);
    arch.set_reg(rob, ob);
    arch.set_reg(rn, n);
    Workload {
        name: name.into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, acc),
    }
}

/// `c[i] = a[i]*k + b[i]` (namd/nab-ish dense arithmetic).
fn saxpy(name: &str, n: u64) -> Workload {
    let a: Vec<u64> = (0..n).map(|i| i + 1).collect();
    let b: Vec<u64> = (0..n).map(|i| i * 5 + 2).collect();
    let mut img = MemImage::new();
    let ab = img.alloc_array(&a);
    let bb = img.alloc_array(&b);
    let cb = img.alloc_words(n);
    let (rab, rbb, rcb, ri, rn, rva, rvb, racc) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut asm = Assembler::new(name);
    let top = asm.label();
    asm.bind(top);
    asm.ldx(rva, rab, ri, 3);
    asm.ldx(rvb, rbb, ri, 3);
    asm.alui(AluOp::Mul, rva, rva, 17);
    asm.alu(AluOp::Add, rva, rva, rvb);
    asm.stx(rva, rcb, ri, 3);
    asm.alu(AluOp::Add, racc, racc, rva);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();
    let mut acc = 0u64;
    for i in 0..n as usize {
        acc = acc.wrapping_add(a[i].wrapping_mul(17).wrapping_add(b[i]));
    }
    let mut arch = ArchState::new();
    arch.set_reg(rab, ab);
    arch.set_reg(rbb, bb);
    arch.set_reg(rcb, cb);
    arch.set_reg(rn, n);
    Workload {
        name: name.into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, acc),
    }
}

/// A cache-resident table-driven FSM (xalancbmk/x264-ish): indirect loads
/// exist but the 1 KiB table always hits, so SVR prefetches are harmless.
fn cached_table_fsm(name: &str, n: u64) -> Workload {
    let table: Vec<u64> = (0..128).map(|i| (i * 37 + 11) % 128).collect();
    let mut img = MemImage::new();
    let tb = img.alloc_array(&table);
    let (rtb, ri, rn, rstate, rx, racc, rt) = (r(1), r(2), r(3), r(4), r(5), r(6), r(7));
    let mut asm = Assembler::new(name);
    let top = asm.label();
    asm.li(rx, 0x9E3779B9);
    asm.bind(top);
    asm.alui(AluOp::Mul, rx, rx, 0x5DEECE66D);
    asm.alui(AluOp::Add, rx, rx, 11);
    asm.alui(AluOp::Srl, rt, rx, 17);
    asm.alui(AluOp::And, rt, rt, 127);
    asm.alu(AluOp::Add, rstate, rstate, rt);
    asm.alui(AluOp::And, rstate, rstate, 127);
    asm.ldx(rstate, rtb, rstate, 3); // state = table[state]
    asm.alu(AluOp::Add, racc, racc, rstate);
    asm.alui(AluOp::Add, ri, ri, 1);
    asm.cmp(ri, rn);
    asm.b(Cond::Ltu, top);
    asm.halt();
    let mut x = 0x9E3779B9u64;
    let mut state = 0u64;
    let mut acc = 0u64;
    for _ in 0..n {
        x = x.wrapping_mul(0x5DEECE66D).wrapping_add(11);
        let t = (x >> 17) & 127;
        state = (state + t) & 127;
        state = table[state as usize];
        acc = acc.wrapping_add(state);
    }
    let mut arch = ArchState::new();
    arch.set_reg(rtb, tb);
    arch.set_reg(rn, n);
    Workload {
        name: name.into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, acc),
    }
}

/// A large-stride column walk (fotonik3d/wrf-ish): regular but not unit
/// stride — covered by the stride prefetcher, not SVR.
fn strided_walk(name: &str, n: u64) -> Workload {
    let cols = 64u64;
    let rows = (n / cols).max(4);
    let data: Vec<u64> = (0..rows * cols).map(|i| i % 1021).collect();
    let mut img = MemImage::new();
    let db = img.alloc_array(&data);
    let (rdb, rrow, rcol, rrows, rcols, rv, racc, rt) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let mut asm = Assembler::new(name);
    let col_top = asm.label();
    let row_top = asm.label();
    asm.bind(col_top);
    asm.li(rrow, 0);
    asm.bind(row_top);
    asm.alu(AluOp::Mul, rt, rrow, rcols);
    asm.alu(AluOp::Add, rt, rt, rcol);
    asm.ldx(rv, rdb, rt, 3); // column-major walk: stride = cols*8
    asm.alu(AluOp::Add, racc, racc, rv);
    asm.alui(AluOp::Add, rrow, rrow, 1);
    asm.cmp(rrow, rrows);
    asm.b(Cond::Ltu, row_top);
    asm.alui(AluOp::Add, rcol, rcol, 1);
    asm.cmp(rcol, rcols);
    asm.b(Cond::Ltu, col_top);
    asm.halt();
    let mut acc = 0u64;
    for c in 0..cols {
        for row in 0..rows {
            acc = acc.wrapping_add(data[(row * cols + c) as usize]);
        }
    }
    let mut arch = ArchState::new();
    arch.set_reg(rdb, db);
    arch.set_reg(rrows, rows);
    arch.set_reg(rcols, cols);
    Workload {
        name: name.into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, acc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_spec_kernels_build_and_verify() {
        for name in SPEC_NAMES {
            let w = spec_like(name, Scale::Tiny);
            let (p, mut img, mut arch) = w.instantiate();
            arch.run(&p, &mut img, 100_000_000);
            assert!(arch.halted(), "{name} did not halt");
            assert!(w.verify(&img, &arch), "{name} failed verification");
        }
    }

    #[test]
    #[should_panic(expected = "unknown SPEC-like")]
    fn unknown_name_panics() {
        let _ = spec_like("quake", Scale::Tiny);
    }

    #[test]
    fn names_are_unique() {
        let mut set = std::collections::HashSet::new();
        for n in SPEC_NAMES {
            assert!(set.insert(n));
        }
        assert_eq!(set.len(), 23);
    }
}
