//! GAP benchmark kernels (§V): PR, BFS, CC, SSSP, BC — hand-written hot
//! loops over CSR graphs, with the initialization phase done natively (the
//! paper skips init and simulates the region of interest).

use crate::graph::{Csr, GraphInput};
use crate::workload::{Check, Scale, Workload};
use svr_isa::{AluOp, ArchState, Assembler, Cond, DataMemory, Reg};
use svr_mem::MemImage;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Distance value for "unreached" in SSSP/BFS-style kernels.
const INF: u64 = u64::MAX / 4;

fn graph_for(input: GraphInput, scale: Scale) -> Csr {
    input.generate(scale.nodes(), scale.edge_factor(), 0xC0FFEE)
}

/// Traversals start from the highest-degree vertex (as GAP picks non-isolated
/// sources); a random source on a skewed graph is often degree-0.
fn source_of(g: &Csr) -> u64 {
    (0..g.num_nodes()).max_by_key(|&u| g.degree(u)).unwrap_or(0) as u64
}

/// PageRank's hot loop (Listing 1 of the paper): for every vertex,
/// accumulate `contrib[v]` over its neighbors and store the total.
///
/// Striding load: the neighbor array (global monotone index). Indirect load:
/// `contrib[v]`. This is the canonical SVR target.
pub fn pagerank(input: GraphInput, scale: Scale) -> Workload {
    let g = graph_for(input, scale);
    let n = g.num_nodes() as u64;
    let mut img = MemImage::new();
    let ob = img.alloc_array(g.offsets());
    let nb = img.alloc_array(g.neighbors());
    // Fixed-point contributions, one per vertex.
    let contrib: Vec<u64> = (0..n).map(|i| (i * 2654435761) % 1000 + 1).collect();
    let cb = img.alloc_array(&contrib);
    let sb = img.alloc_words(n);

    let (robs, rnbs, rcb, rsb) = (r(1), r(2), r(3), r(4));
    let (ru, rn, rj, rend, rv, rc, rtot, rsum, rt) =
        (r(5), r(6), r(7), r(8), r(9), r(10), r(11), r(12), r(13));

    let mut asm = Assembler::new("pr");
    let outer = asm.label();
    let inner = asm.label();
    let after = asm.label();
    asm.bind(outer);
    asm.ldx(rj, robs, ru, 3); // j = offsets[u]
    asm.alui(AluOp::Add, rt, ru, 1);
    asm.ldx(rend, robs, rt, 3); // end = offsets[u+1]
    asm.li(rtot, 0);
    asm.cmp(rj, rend);
    asm.b(Cond::Geu, after);
    asm.bind(inner);
    asm.ldx(rv, rnbs, rj, 3); // v = neigh[j]        (striding)
    asm.ldx(rc, rcb, rv, 3); // c = contrib[v]      (indirect)
    asm.alu(AluOp::Add, rtot, rtot, rc);
    asm.alui(AluOp::Add, rj, rj, 1);
    asm.cmp(rj, rend);
    asm.b(Cond::Ltu, inner);
    asm.bind(after);
    asm.stx(rtot, rsb, ru, 3);
    asm.alu(AluOp::Add, rsum, rsum, rtot);
    asm.alui(AluOp::Add, ru, ru, 1);
    asm.cmp(ru, rn);
    asm.b(Cond::Ltu, outer);
    asm.halt();

    let expected: u64 = g
        .neighbors()
        .iter()
        .map(|&v| contrib[v as usize])
        .fold(0u64, |a, b| a.wrapping_add(b));

    let mut arch = ArchState::new();
    arch.set_reg(robs, ob);
    arch.set_reg(rnbs, nb);
    arch.set_reg(rcb, cb);
    arch.set_reg(rsb, sb);
    arch.set_reg(rn, n);
    Workload {
        name: format!("PR_{}", input.label()),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(rsum, expected),
    }
}

/// Breadth-first search with an explicit frontier queue and parent array.
pub fn bfs(input: GraphInput, scale: Scale) -> Workload {
    bfs_named(input, scale, format!("BFS_{}", input.label()))
}

/// Graph500 seq-CSR is a BFS over a Kronecker graph; we reuse the BFS
/// kernel under its own name.
pub fn graph500(scale: Scale) -> Workload {
    bfs_named(GraphInput::Kr, scale, "G500".to_string())
}

fn bfs_named(input: GraphInput, scale: Scale, name: String) -> Workload {
    let g = graph_for(input, scale);
    let n = g.num_nodes() as u64;
    let src = source_of(&g);
    let mut img = MemImage::new();
    let ob = img.alloc_array(g.offsets());
    let nb = img.alloc_array(g.neighbors());
    let mut parent = vec![INF; n as usize];
    parent[src as usize] = src;
    let pb = img.alloc_array(&parent);
    let mut queue = vec![0u64; n as usize + 1];
    queue[0] = src;
    let qb = img.alloc_array(&queue);

    let (rob, rnb, rpb, rqb) = (r(1), r(2), r(3), r(4));
    let (rhead, rtail, ru, rj, rend, rv, rpv, rt, rcount) =
        (r(5), r(6), r(7), r(8), r(9), r(10), r(11), r(12), r(13));

    let mut asm = Assembler::new("bfs");
    let outer = asm.label();
    let inner = asm.label();
    let skip = asm.label();
    let done = asm.label();
    asm.bind(outer);
    asm.cmp(rhead, rtail);
    asm.b(Cond::Geu, done);
    asm.ldx(ru, rqb, rhead, 3); // u = queue[head]    (striding)
    asm.alui(AluOp::Add, rhead, rhead, 1);
    asm.ldx(rj, rob, ru, 3); // j = offsets[u]      (indirect)
    asm.alui(AluOp::Add, rt, ru, 1);
    asm.ldx(rend, rob, rt, 3);
    asm.cmp(rj, rend);
    asm.b(Cond::Geu, outer); // empty neighbor list
    asm.bind(inner);
    asm.ldx(rv, rnb, rj, 3); // v = neigh[j]
    asm.ldx(rpv, rpb, rv, 3); // parent[v]           (indirect)
    asm.cmpi(rpv, INF as i64);
    asm.b(Cond::Ne, skip);
    asm.stx(ru, rpb, rv, 3); // parent[v] = u
    asm.stx(rv, rqb, rtail, 3); // queue[tail] = v
    asm.alui(AluOp::Add, rtail, rtail, 1);
    asm.alui(AluOp::Add, rcount, rcount, 1);
    asm.bind(skip);
    asm.alui(AluOp::Add, rj, rj, 1);
    asm.cmp(rj, rend); // backward-conditional latch: the LBD's training hook
    asm.b(Cond::Ltu, inner);
    asm.j(outer);
    asm.bind(done);
    asm.halt();

    // Reference: replicate the exact algorithm.
    let mut visited = 0u64;
    {
        let mut par = vec![INF; n as usize];
        par[src as usize] = src;
        let mut q = vec![src];
        let mut head = 0;
        while head < q.len() {
            let u = q[head] as usize;
            head += 1;
            for &v in g.neighbors_of(u) {
                if par[v as usize] == INF {
                    par[v as usize] = u as u64;
                    q.push(v);
                    visited += 1;
                }
            }
        }
    }

    let mut arch = ArchState::new();
    arch.set_reg(rob, ob);
    arch.set_reg(rnb, nb);
    arch.set_reg(rpb, pb);
    arch.set_reg(rqb, qb);
    arch.set_reg(rhead, 0);
    arch.set_reg(rtail, 1);
    Workload {
        name,
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(rcount, visited),
    }
}

/// Connected components by label propagation (two full sweeps).
pub fn cc(input: GraphInput, scale: Scale) -> Workload {
    let g = graph_for(input, scale);
    let n = g.num_nodes() as u64;
    let sweeps = 2u64;
    let mut img = MemImage::new();
    let ob = img.alloc_array(g.offsets());
    let nb = img.alloc_array(g.neighbors());
    let comp: Vec<u64> = (0..n).collect();
    let cb = img.alloc_array(&comp);

    let (rob, rnb, rcb) = (r(1), r(2), r(3));
    let (ru, rn, rj, rend, rv, rcv, rcu, rs, rt, rsum) = (
        r(4),
        r(5),
        r(6),
        r(7),
        r(8),
        r(9),
        r(10),
        r(11),
        r(12),
        r(13),
    );

    let mut asm = Assembler::new("cc");
    let sweep = asm.label();
    let outer = asm.label();
    let inner = asm.label();
    let skip = asm.label();
    let after = asm.label();
    asm.bind(sweep);
    asm.li(ru, 0);
    asm.bind(outer);
    asm.ldx(rj, rob, ru, 3);
    asm.alui(AluOp::Add, rt, ru, 1);
    asm.ldx(rend, rob, rt, 3);
    asm.ldx(rcu, rcb, ru, 3); // comp[u]
    asm.cmp(rj, rend);
    asm.b(Cond::Geu, after);
    asm.bind(inner);
    asm.ldx(rv, rnb, rj, 3); // v = neigh[j]        (striding)
    asm.ldx(rcv, rcb, rv, 3); // comp[v]             (indirect)
    asm.cmp(rcv, rcu);
    asm.b(Cond::Geu, skip);
    asm.mv(rcu, rcv);
    asm.bind(skip);
    asm.alui(AluOp::Add, rj, rj, 1);
    asm.cmp(rj, rend); // backward-conditional latch
    asm.b(Cond::Ltu, inner);
    asm.bind(after);
    asm.stx(rcu, rcb, ru, 3);
    asm.alu(AluOp::Add, rsum, rsum, rcu);
    asm.alui(AluOp::Add, ru, ru, 1);
    asm.cmp(ru, rn);
    asm.b(Cond::Ltu, outer);
    asm.alui(AluOp::Add, rs, rs, 1);
    asm.cmpi(rs, sweeps as i64);
    asm.b(Cond::Ltu, sweep);
    asm.halt();

    // Reference: identical sweeps.
    let mut comp_ref: Vec<u64> = (0..n).collect();
    let mut expected = 0u64;
    for _ in 0..sweeps {
        for u in 0..n as usize {
            let mut cu = comp_ref[u];
            for &v in g.neighbors_of(u) {
                cu = cu.min(comp_ref[v as usize]);
            }
            comp_ref[u] = cu;
            expected = expected.wrapping_add(cu);
        }
    }

    let mut arch = ArchState::new();
    arch.set_reg(rob, ob);
    arch.set_reg(rnb, nb);
    arch.set_reg(rcb, cb);
    arch.set_reg(rn, n);
    Workload {
        name: format!("CC_{}", input.label()),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(rsum, expected),
    }
}

/// Single-source shortest paths with a worklist (SPFA-style, approximating
/// GAP's delta-stepping): the frontier queue strides, everything after it is
/// a dependent indirect chain — a pattern IMP cannot capture (§VI-A).
pub fn sssp(input: GraphInput, scale: Scale) -> Workload {
    let g = graph_for(input, scale);
    let n = g.num_nodes() as u64;
    let src = source_of(&g);
    // Per-edge weights parallel to the neighbor array.
    let wts: Vec<u64> = (0..g.num_edges() as u64)
        .map(|i| (i * 2654435761) % 63 + 1)
        .collect();
    let qcap = 16 * n;
    let mut img = MemImage::new();
    let ob = img.alloc_array(g.offsets());
    let nb = img.alloc_array(g.neighbors());
    let wb = img.alloc_array(&wts);
    let mut dist = vec![INF; n as usize];
    dist[src as usize] = 0;
    let distb = img.alloc_array(&dist);
    let qb = img.alloc_words(qcap + 1);
    img.write_u64(qb, src); // queue[0] = source

    let (rob, rnb, rwb, rdist, rqb) = (r(1), r(2), r(3), r(4), r(5));
    let (rhead, rtail, ru, rj, rend, rv, rw, rdu, rdv, rt, rqcap) = (
        r(6),
        r(7),
        r(8),
        r(9),
        r(10),
        r(11),
        r(12),
        r(13),
        r(14),
        r(15),
        r(16),
    );

    let mut asm = Assembler::new("sssp");
    let outer = asm.label();
    let inner = asm.label();
    let skip = asm.label();
    let no_push = asm.label();
    let done = asm.label();
    asm.bind(outer);
    asm.cmp(rhead, rtail);
    asm.b(Cond::Geu, done);
    asm.ldx(ru, rqb, rhead, 3); // u = queue[head]   (striding)
    asm.alui(AluOp::Add, rhead, rhead, 1);
    asm.ldx(rdu, rdist, ru, 3); // dist[u]           (indirect)
    asm.ldx(rj, rob, ru, 3);
    asm.alui(AluOp::Add, rt, ru, 1);
    asm.ldx(rend, rob, rt, 3);
    asm.cmp(rj, rend);
    asm.b(Cond::Geu, outer);
    asm.bind(inner);
    asm.ldx(rv, rnb, rj, 3); // v = neigh[j]
    asm.ldx(rw, rwb, rj, 3); // w = wt[j]
    asm.alu(AluOp::Add, rt, rdu, rw);
    asm.ldx(rdv, rdist, rv, 3); // dist[v]           (indirect)
    asm.cmp(rt, rdv);
    asm.b(Cond::Geu, skip);
    asm.stx(rt, rdist, rv, 3); // relax
    asm.cmp(rtail, rqcap);
    asm.b(Cond::Geu, no_push);
    asm.stx(rv, rqb, rtail, 3); // queue[tail] = v
    asm.alui(AluOp::Add, rtail, rtail, 1);
    asm.bind(no_push);
    asm.bind(skip);
    asm.alui(AluOp::Add, rj, rj, 1);
    asm.cmp(rj, rend); // backward-conditional latch
    asm.b(Cond::Ltu, inner);
    asm.j(outer);
    asm.bind(done);
    asm.halt();

    // Reference: identical worklist algorithm.
    let mut dref = vec![INF; n as usize];
    dref[src as usize] = 0;
    {
        let mut q = vec![src];
        let mut head = 0usize;
        while head < q.len() {
            let u = q[head] as usize;
            head += 1;
            let du = dref[u];
            for (idx, &v) in g.neighbors_of(u).iter().enumerate() {
                let e = g.offsets()[u] as usize + idx;
                let t = du.wrapping_add(wts[e]);
                if t < dref[v as usize] {
                    dref[v as usize] = t;
                    if q.len() < qcap as usize {
                        q.push(v);
                    }
                }
            }
        }
    }
    let expected_last = dref[n as usize - 1];

    let mut arch = ArchState::new();
    arch.set_reg(rob, ob);
    arch.set_reg(rnb, nb);
    arch.set_reg(rwb, wb);
    arch.set_reg(rdist, distb);
    arch.set_reg(rqb, qb);
    arch.set_reg(rhead, 0);
    arch.set_reg(rtail, 1);
    arch.set_reg(rqcap, qcap);
    Workload {
        name: format!("SSSP_{}", input.label()),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Mem(distb + (n - 1) * 8, expected_last),
    }
}

/// Betweenness centrality, forward phase of Brandes: BFS with shortest-path
/// counting (two dependent indirect arrays per edge).
pub fn bc(input: GraphInput, scale: Scale) -> Workload {
    let g = graph_for(input, scale);
    let n = g.num_nodes() as u64;
    let src = source_of(&g);
    let mut img = MemImage::new();
    let ob = img.alloc_array(g.offsets());
    let nb = img.alloc_array(g.neighbors());
    let mut depth = vec![INF; n as usize];
    depth[src as usize] = 0;
    let depthb = img.alloc_array(&depth);
    let mut sigma = vec![0u64; n as usize];
    sigma[src as usize] = 1;
    let sigmab = img.alloc_array(&sigma);
    let mut queue = vec![0u64; n as usize + 1];
    queue[0] = src;
    let qb = img.alloc_array(&queue);

    let (rob, rnb, rdep, rsig, rqb) = (r(1), r(2), r(3), r(4), r(5));
    let (rhead, rtail, ru, rj, rend, rv, rdv, rdu, rsu, rsv, rt, racc) = (
        r(6),
        r(7),
        r(8),
        r(9),
        r(10),
        r(11),
        r(12),
        r(13),
        r(14),
        r(15),
        r(16),
        r(17),
    );

    let mut asm = Assembler::new("bc");
    let outer = asm.label();
    let inner = asm.label();
    let not_new = asm.label();
    let skip = asm.label();
    let next = asm.label();
    let done = asm.label();
    asm.bind(outer);
    asm.cmp(rhead, rtail);
    asm.b(Cond::Geu, done);
    asm.ldx(ru, rqb, rhead, 3); // u = queue[head]   (striding)
    asm.alui(AluOp::Add, rhead, rhead, 1);
    asm.ldx(rj, rob, ru, 3);
    asm.alui(AluOp::Add, rt, ru, 1);
    asm.ldx(rend, rob, rt, 3);
    asm.ldx(rdu, rdep, ru, 3); // depth[u]
    asm.ldx(rsu, rsig, ru, 3); // sigma[u]
    asm.cmp(rj, rend);
    asm.b(Cond::Geu, outer);
    asm.bind(inner);
    asm.ldx(rv, rnb, rj, 3); // v = neigh[j]
    asm.ldx(rdv, rdep, rv, 3); // depth[v]          (indirect)
    asm.cmpi(rdv, INF as i64);
    asm.b(Cond::Ne, not_new);
    // Newly discovered: depth[v] = depth[u] + 1; sigma[v] = sigma[u].
    asm.alui(AluOp::Add, rt, rdu, 1);
    asm.stx(rt, rdep, rv, 3);
    asm.stx(rsu, rsig, rv, 3);
    asm.stx(rv, rqb, rtail, 3);
    asm.alui(AluOp::Add, rtail, rtail, 1);
    asm.alui(AluOp::Add, racc, racc, 1);
    asm.j(next);
    asm.bind(not_new);
    // Same-level path counting: sigma[v] += sigma[u] when depth matches.
    asm.alui(AluOp::Add, rt, rdu, 1);
    asm.cmp(rdv, rt);
    asm.b(Cond::Ne, skip);
    asm.ldx(rsv, rsig, rv, 3);
    asm.alu(AluOp::Add, rsv, rsv, rsu);
    asm.stx(rsv, rsig, rv, 3);
    asm.bind(skip);
    asm.bind(next);
    asm.alui(AluOp::Add, rj, rj, 1);
    asm.cmp(rj, rend); // backward-conditional latch
    asm.b(Cond::Ltu, inner);
    asm.j(outer);
    asm.bind(done);
    asm.halt();

    // Reference: identical traversal.
    let mut expected = 0u64;
    {
        let mut dep = vec![INF; n as usize];
        let mut sig = vec![0u64; n as usize];
        dep[src as usize] = 0;
        sig[src as usize] = 1;
        let mut q = vec![src];
        let mut head = 0;
        while head < q.len() {
            let u = q[head] as usize;
            head += 1;
            for &v in g.neighbors_of(u) {
                let v = v as usize;
                if dep[v] == INF {
                    dep[v] = dep[u] + 1;
                    sig[v] = sig[u];
                    q.push(v as u64);
                    expected += 1;
                } else if dep[v] == dep[u] + 1 {
                    sig[v] = sig[v].wrapping_add(sig[u]);
                }
            }
        }
    }

    let mut arch = ArchState::new();
    arch.set_reg(rob, ob);
    arch.set_reg(rnb, nb);
    arch.set_reg(rdep, depthb);
    arch.set_reg(rsig, sigmab);
    arch.set_reg(rqb, qb);
    arch.set_reg(rhead, 0);
    arch.set_reg(rtail, 1);
    Workload {
        name: format!("BC_{}", input.label()),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::Reg(racc, expected),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_functional(w: &Workload) -> bool {
        let (p, mut img, mut arch) = w.instantiate();
        arch.run(&p, &mut img, 200_000_000);
        assert!(arch.halted(), "{} did not halt", w.name);
        w.verify(&img, &arch)
    }

    #[test]
    fn pr_is_correct_on_all_inputs() {
        for input in GraphInput::ALL {
            assert!(run_functional(&pagerank(input, Scale::Tiny)), "{input:?}");
        }
    }

    #[test]
    fn bfs_is_correct() {
        for input in [GraphInput::Kr, GraphInput::Ur] {
            assert!(run_functional(&bfs(input, Scale::Tiny)), "{input:?}");
        }
    }

    #[test]
    fn cc_is_correct() {
        assert!(run_functional(&cc(GraphInput::Ur, Scale::Tiny)));
    }

    #[test]
    fn sssp_is_correct() {
        assert!(run_functional(&sssp(GraphInput::Kr, Scale::Tiny)));
    }

    #[test]
    fn bc_is_correct() {
        assert!(run_functional(&bc(GraphInput::Ljn, Scale::Tiny)));
    }

    #[test]
    fn g500_is_bfs_on_kronecker() {
        let w = graph500(Scale::Tiny);
        assert_eq!(w.name, "G500");
        assert!(run_functional(&w));
    }
}
