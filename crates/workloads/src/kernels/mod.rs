//! All workload kernels: GAP graph kernels, the HPC/database set, and the
//! SPEC-like regular set.

pub mod diag;
pub mod gap;
pub mod hpcdb;
pub mod regular;

pub use diag::{livelock, panic_on_build};
pub use gap::{bc, bfs, cc, graph500, pagerank, sssp};
pub use hpcdb::{camel, hashjoin, kangaroo, nas_cg, nas_is, randacc};
pub use regular::{spec_like, SPEC_NAMES};
