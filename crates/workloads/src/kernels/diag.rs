//! Diagnostic (non-paper) kernels that exercise the harness's failure
//! paths: a guest that livelocks and a workload whose *build* panics. They
//! are registered ([`crate::Kernel::DiagSpin`], [`crate::Kernel::DiagPanic`])
//! so harness binaries can name them, but belong to no paper suite — no
//! figure ever sweeps them.

use crate::workload::{Check, Scale, Workload};
use svr_isa::{ArchState, Assembler, Reg};
use svr_mem::MemImage;

/// A livelocking guest: one dependent load, then an unconditional
/// `j`-to-self. After the load retires, the spin issues forever without a
/// single architectural effect (jumps write no register, no memory, no
/// flags), so the forward-progress watchdog — not the cycle budget — must be
/// what terminates it.
pub fn livelock(_scale: Scale) -> Workload {
    let mut img = MemImage::new();
    let base = img.alloc_array(&[0xdead_beefu64]);

    let rp = Reg::new(1);
    let mut asm = Assembler::new("diag_spin");
    asm.ld(rp, rp, 0); // one real (dependent) load first
    let top = asm.label();
    asm.bind(top);
    asm.j(top); // spin: never an architectural effect
    asm.halt(); // unreachable

    let mut arch = ArchState::new();
    arch.set_reg(rp, base);
    Workload {
        name: "DiagSpin".into(),
        program: asm.finish(),
        image: img,
        arch,
        check: Check::None,
    }
}

/// A workload whose construction itself panics, exercising the sweep's
/// build-isolation path (one broken kernel must only fail its own points).
pub fn panic_on_build(_scale: Scale) -> Workload {
    panic!("DiagPanic: deliberate diagnostic panic during workload build");
}
