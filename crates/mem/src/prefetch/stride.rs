//! Classic PC-indexed reference-prediction-table stride prefetcher
//! (Chen & Baer, 1995) — the baseline L1 prefetcher of Table III.

use super::{DemandInfo, Prefetcher};
use crate::image::MemImage;
use crate::line_of;

/// Stride prefetcher parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Reference-prediction-table entries.
    pub entries: usize,
    /// Confidence needed before prefetching (2-bit saturating counter).
    pub threshold: u8,
    /// How many strides ahead to prefetch once confident.
    pub degree: u32,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            entries: 64,
            threshold: 2,
            degree: 4,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    pc: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    conf: u8,
}

/// See [`StrideConfig`]. Direct-mapped by PC for simplicity.
///
/// # Examples
///
/// ```
/// use svr_mem::prefetch::{StridePrefetcher, StrideConfig, Prefetcher, DemandInfo};
/// use svr_mem::MemImage;
///
/// let mut pf = StridePrefetcher::new(StrideConfig::default());
/// let img = MemImage::new();
/// let mut out = Vec::new();
/// for i in 0..4u64 {
///     out.clear();
///     pf.on_demand(DemandInfo { pc: 7, addr: 0x1000 + i * 64, value: None, was_miss: false },
///                  &img, &mut out);
/// }
/// assert!(!out.is_empty()); // confident after repeated stride
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    config: StrideConfig,
    table: Vec<Entry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    pub fn new(config: StrideConfig) -> Self {
        StridePrefetcher {
            table: vec![Entry::default(); config.entries],
            config,
            issued: 0,
        }
    }

    /// Number of prefetch addresses emitted so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_demand(&mut self, info: DemandInfo, _image: &MemImage, out: &mut Vec<u64>) {
        let idx = (info.pc as usize) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != info.pc {
            *e = Entry {
                pc: info.pc,
                valid: true,
                last_addr: info.addr,
                stride: 0,
                conf: 0,
            };
            return;
        }
        let stride = info.addr.wrapping_sub(e.last_addr) as i64;
        if stride == e.stride && stride != 0 {
            e.conf = (e.conf + 1).min(3);
        } else if e.conf > 0 {
            e.conf -= 1;
        } else {
            e.stride = stride;
        }
        e.last_addr = info.addr;
        if e.conf >= self.config.threshold {
            // For sub-line strides, look ahead in whole lines so the
            // prefetches run far enough in front of the demand stream.
            let step = if e.stride.unsigned_abs() < crate::LINE_BYTES {
                if e.stride > 0 {
                    crate::LINE_BYTES as i64
                } else {
                    -(crate::LINE_BYTES as i64)
                }
            } else {
                e.stride
            };
            let mut last_line = line_of(info.addr);
            for d in 1..=self.config.degree as i64 {
                let target = info.addr.wrapping_add((step * d) as u64);
                // Only emit one prefetch per new line.
                if line_of(target) != last_line {
                    last_line = line_of(target);
                    out.push(target);
                    self.issued += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(pf: &mut StridePrefetcher, pc: u64, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        pf.on_demand(
            DemandInfo {
                pc,
                addr,
                value: None,
                was_miss: true,
            },
            &MemImage::new(),
            &mut out,
        );
        out
    }

    #[test]
    fn learns_stride_and_prefetches_ahead() {
        let mut pf = StridePrefetcher::new(StrideConfig {
            entries: 8,
            threshold: 2,
            degree: 4,
        });
        // 64-byte stride: every access a new line.
        assert!(feed(&mut pf, 1, 0).is_empty());
        assert!(feed(&mut pf, 1, 64).is_empty());
        assert!(feed(&mut pf, 1, 128).is_empty()); // conf 1 -> not yet
        let out = feed(&mut pf, 1, 192); // conf 2 -> fire
        assert_eq!(out, vec![256, 320, 384, 448]);
    }

    #[test]
    fn small_strides_promote_to_line_lookahead() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        for i in 0..8 {
            feed(&mut pf, 1, i * 8);
        }
        let out = feed(&mut pf, 1, 64);
        // 8-byte stride is promoted to whole-line steps: 4 lines ahead.
        assert_eq!(out, vec![128, 192, 256, 320]);
    }

    #[test]
    fn irregular_stream_never_fires() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let addrs = [0u64, 8000, 16, 90000, 1234, 777777];
        for &a in &addrs {
            assert!(feed(&mut pf, 2, a).is_empty());
        }
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn pc_collision_resets_entry() {
        let mut pf = StridePrefetcher::new(StrideConfig {
            entries: 1,
            threshold: 2,
            degree: 2,
        });
        feed(&mut pf, 1, 0);
        feed(&mut pf, 1, 64);
        feed(&mut pf, 2, 0); // different pc, same slot -> reset
        assert!(feed(&mut pf, 1, 128).is_empty());
    }
}
