//! IMP — the Indirect Memory Prefetcher (Yu et al., MICRO 2015).
//!
//! IMP detects `A[B[i]]` patterns at the L1: a striding "index" load stream
//! plus misses whose addresses are an affine function `base + (idx << shift)`
//! of recently loaded index values. Once a pattern is verified twice, every
//! index load triggers prefetches for the next `distance` indirect targets,
//! reading future index values from fill data (modeled here via the
//! functional memory image).
//!
//! Faithful to the paper's characterization in §VI of the SVR paper:
//! * covers simple stride-indirect workloads (PR, IS, Graph500, BFS/KR);
//! * cannot capture hash-table chains, value transformations (randacc's
//!   masking), or multi-level indirection (Kangaroo's second level);
//! * always prefetches `distance` elements past inner-loop boundaries,
//!   making it inaccurate on short inner loops (BFS/UR).

use super::{DemandInfo, Prefetcher};
use crate::image::MemImage;
use svr_isa::DataMemory;

/// IMP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImpConfig {
    /// Prefetch-table (index-stream) entries.
    pub pt_entries: usize,
    /// Stride confidence needed to treat a PC as an index stream.
    pub stream_threshold: u8,
    /// Candidate element-size shifts to test (log2 bytes).
    pub shifts: [u8; 2],
    /// Indirect-prefetch lookahead distance in index elements.
    pub distance: u32,
    /// Matches required before a (base, shift) hypothesis is trusted.
    pub verify_matches: u8,
}

impl Default for ImpConfig {
    fn default() -> Self {
        ImpConfig {
            pt_entries: 16,
            stream_threshold: 2,
            shifts: [2, 3],
            distance: 16,
            verify_matches: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    pc: u64,
    valid: bool,
    last_addr: u64,
    stride: i64,
    conf: u8,
    /// Latest index value, pending correlation with an indirect miss.
    pending_value: Option<u64>,
    /// Hypotheses per candidate shift: (base, consecutive matches).
    cand: [(u64, u8); 2],
    /// Learned pattern.
    learned: Option<(u64, u8)>, // (base, shift)
}

/// See module docs.
///
/// # Examples
///
/// ```
/// use svr_mem::prefetch::{ImpPrefetcher, ImpConfig, Prefetcher, DemandInfo};
/// use svr_mem::MemImage;
/// use svr_isa::DataMemory;
///
/// let mut img = MemImage::new();
/// let idx_base = img.alloc_array(&[5, 2, 7, 1, 4, 3, 6, 0, 5, 2, 7, 1]);
/// let data_base = img.alloc_words(64);
/// let mut imp = ImpPrefetcher::new(ImpConfig::default());
/// let mut out = Vec::new();
/// for i in 0..6u64 {
///     let ia = idx_base + i * 8;
///     let v = img.read_u64(ia);
///     imp.on_demand(DemandInfo { pc: 1, addr: ia, value: Some(v), was_miss: false }, &img, &mut out);
///     imp.on_demand(DemandInfo { pc: 2, addr: data_base + (v << 3), value: Some(0), was_miss: true },
///                   &img, &mut out);
/// }
/// assert!(!out.is_empty()); // pattern learned, indirect prefetches emitted
/// ```
#[derive(Debug, Clone)]
pub struct ImpPrefetcher {
    config: ImpConfig,
    streams: Vec<Stream>,
    issued: u64,
    learned_patterns: u64,
}

impl ImpPrefetcher {
    /// Creates an empty IMP.
    pub fn new(config: ImpConfig) -> Self {
        ImpPrefetcher {
            streams: vec![Stream::default(); config.pt_entries],
            config,
            issued: 0,
            learned_patterns: 0,
        }
    }

    /// Number of indirect prefetches emitted.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of (re-)learned indirect patterns.
    pub fn learned_patterns(&self) -> u64 {
        self.learned_patterns
    }

    fn update_stream(&mut self, info: &DemandInfo) -> Option<usize> {
        let idx = (info.pc as usize) % self.streams.len();
        let e = &mut self.streams[idx];
        if !e.valid || e.pc != info.pc {
            // Only steal the slot if its current owner has no learned pattern.
            if e.valid && e.learned.is_some() && e.pc != info.pc {
                return None;
            }
            *e = Stream {
                pc: info.pc,
                valid: true,
                last_addr: info.addr,
                ..Stream::default()
            };
            return None;
        }
        let stride = info.addr.wrapping_sub(e.last_addr) as i64;
        if stride != 0 && stride == e.stride {
            e.conf = (e.conf + 1).min(3);
        } else if e.conf > 0 {
            e.conf -= 1;
        } else {
            e.stride = stride;
        }
        e.last_addr = info.addr;
        if e.conf >= self.config.stream_threshold {
            e.pending_value = info.value;
            Some(idx)
        } else {
            e.pending_value = None;
            None
        }
    }

    fn correlate_miss(&mut self, miss_pc: u64, miss_addr: u64) {
        let shifts = self.config.shifts;
        let need = self.config.verify_matches;
        for e in &mut self.streams {
            // An index stream and its dependent indirect loads are distinct
            // instructions; never correlate a stream with its own misses.
            if !e.valid || e.learned.is_some() || e.pc == miss_pc {
                continue;
            }
            let Some(v) = e.pending_value.take() else {
                continue;
            };
            for (si, &sh) in shifts.iter().enumerate() {
                let base = miss_addr.wrapping_sub(v << sh);
                let (prev, hits) = e.cand[si];
                if hits > 0 && prev == base {
                    let hits = hits + 1;
                    e.cand[si] = (base, hits);
                    if hits >= need {
                        e.learned = Some((base, sh));
                        self.learned_patterns += 1;
                    }
                } else {
                    e.cand[si] = (base, 1);
                }
            }
        }
    }

    fn emit_indirect(
        &mut self,
        idx: usize,
        info: &DemandInfo,
        image: &MemImage,
        out: &mut Vec<u64>,
    ) {
        let e = &self.streams[idx];
        let Some((base, sh)) = e.learned else { return };
        if e.stride == 0 {
            return;
        }
        for j in 1..=self.config.distance as i64 {
            let idx_addr = info.addr.wrapping_add((e.stride * j) as u64);
            let idx_val = image.read_u64(idx_addr);
            out.push(base.wrapping_add(idx_val << sh));
            self.issued += 1;
        }
    }
}

impl Prefetcher for ImpPrefetcher {
    fn on_demand(&mut self, info: DemandInfo, image: &MemImage, out: &mut Vec<u64>) {
        // Index-stream update happens for loads with values.
        if info.value.is_some() {
            if let Some(idx) = self.update_stream(&info) {
                if self.streams[idx].learned.is_some() {
                    self.emit_indirect(idx, &info, image, out);
                }
            }
        }
        if info.was_miss {
            self.correlate_miss(info.pc, info.addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives IMP with an `A[B[i]]` loop; returns emitted prefetches.
    fn drive_stride_indirect(mask: Option<u64>) -> Vec<u64> {
        let mut img = MemImage::new();
        let n = 64u64;
        let idx: Vec<u64> = (0..n).map(|i| (i * 37 + 11) % n).collect();
        let idx_base = img.alloc_array(&idx);
        let data_base = img.alloc_words(n * 16);
        let mut imp = ImpPrefetcher::new(ImpConfig::default());
        let mut out = Vec::new();
        for i in 0..n {
            let ia = idx_base + i * 8;
            let mut v = img.read_u64(ia);
            imp.on_demand(
                DemandInfo {
                    pc: 10,
                    addr: ia,
                    value: Some(v),
                    was_miss: i % 8 == 0,
                },
                &img,
                &mut out,
            );
            if let Some(m) = mask {
                v &= m; // value transformation breaks the affine relation
            }
            imp.on_demand(
                DemandInfo {
                    pc: 20,
                    addr: data_base + (v << 3),
                    value: Some(0),
                    was_miss: true,
                },
                &img,
                &mut out,
            );
        }
        out
    }

    #[test]
    fn learns_plain_stride_indirect() {
        let out = drive_stride_indirect(None);
        assert!(out.len() >= 16, "learned pattern should emit prefetches");
    }

    #[test]
    fn prefetches_are_correct_targets() {
        let mut img = MemImage::new();
        let idx: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4];
        let idx_base = img.alloc_array(&idx);
        let data_base = img.alloc_words(64);
        let mut imp = ImpPrefetcher::new(ImpConfig {
            distance: 2,
            ..ImpConfig::default()
        });
        let mut out = Vec::new();
        for (i, &v) in idx.iter().enumerate() {
            let ia = idx_base + 8 * i as u64;
            out.clear();
            imp.on_demand(
                DemandInfo {
                    pc: 1,
                    addr: ia,
                    value: Some(v),
                    was_miss: false,
                },
                &img,
                &mut out,
            );
            imp.on_demand(
                DemandInfo {
                    pc: 2,
                    addr: data_base + (v << 3),
                    value: Some(0),
                    was_miss: true,
                },
                &img,
                &mut out,
            );
            if i + 3 < idx.len() && !out.is_empty() {
                // Prefetches target the next indices' data elements.
                assert_eq!(out[0], data_base + (idx[i + 1] << 3));
            }
        }
        assert!(imp.learned_patterns() >= 1);
    }

    #[test]
    fn value_transformation_defeats_imp() {
        // randacc-style: address uses (value & mask), not value.
        let out = drive_stride_indirect(Some(0xf));
        // Correlation never verifies twice with masked values vs raw ones.
        assert!(
            out.is_empty(),
            "IMP should not learn a nonlinear value transformation"
        );
    }

    #[test]
    fn random_misses_do_not_learn() {
        let mut imp = ImpPrefetcher::new(ImpConfig::default());
        let img = MemImage::new();
        let mut out = Vec::new();
        let mut x = 12345u64;
        for i in 0..200u64 {
            imp.on_demand(
                DemandInfo {
                    pc: 1,
                    addr: 0x1000 + i * 8,
                    value: Some(i),
                    was_miss: false,
                },
                &img,
                &mut out,
            );
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            imp.on_demand(
                DemandInfo {
                    pc: 2,
                    addr: x & 0xffff_fff8,
                    value: Some(0),
                    was_miss: true,
                },
                &img,
                &mut out,
            );
        }
        assert_eq!(imp.learned_patterns(), 0);
        assert!(out.is_empty());
    }
}
