//! Hardware prefetchers attached to the L1 data cache.
//!
//! [`StridePrefetcher`] is the baseline next-N-strides prefetcher present in
//! every configuration (Table III). [`ImpPrefetcher`] is the Indirect Memory
//! Prefetcher of Yu et al. (MICRO 2015), the prior-art comparison point in
//! Figs. 1 and 11–13.

mod imp;
mod stride;

pub use imp::{ImpConfig, ImpPrefetcher};
pub use stride::{StrideConfig, StridePrefetcher};

use crate::image::MemImage;

/// Observation of one demand access, fed to prefetchers by the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct DemandInfo {
    /// PC of the load (instruction index).
    pub pc: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// Loaded value (loads only; `None` for stores).
    pub value: Option<u64>,
    /// Whether the access missed the L1.
    pub was_miss: bool,
}

/// A prefetcher observing the L1 demand stream and emitting prefetch
/// candidate addresses.
pub trait Prefetcher {
    /// Observes a demand access and appends prefetch addresses to `out`.
    ///
    /// `image` provides functional data so value-dependent prefetchers (IMP)
    /// can compute indirect targets, mirroring hardware that snoops fill data.
    fn on_demand(&mut self, info: DemandInfo, image: &MemImage, out: &mut Vec<u64>);
}
