//! # svr-mem — memory hierarchy for the SVR simulator
//!
//! Timing-level models of the memory system from Table III of the paper:
//! L1-I/L1-D/L2 set-associative caches with per-line prefetch tags, MSHRs
//! with same-line coalescing, a latency+bandwidth DRAM model, TLBs with a
//! limited pool of page-table walkers, a baseline stride prefetcher, and the
//! IMP indirect-memory prefetcher used as a comparison point.
//!
//! Functional data lives in a separate sparse [`MemImage`] (the caches model
//! timing only); every core model reads/writes the image directly and asks
//! the [`MemoryHierarchy`] *when* an access completes.
//!
//! # Examples
//!
//! ```
//! use svr_mem::{MemoryHierarchy, MemConfig, Access, AccessKind};
//!
//! let mut hier = MemoryHierarchy::new(MemConfig::default());
//! let miss = hier.access(Access::new(0, 0x1000, AccessKind::DemandLoad));
//! let hit = hier.access(Access::new(miss.complete_at, 0x1000, AccessKind::DemandLoad));
//! assert!(hit.complete_at - miss.complete_at < miss.complete_at); // second access hits
//! ```

mod cache;
mod dram;
mod hierarchy;
mod image;
mod mshr;
pub mod prefetch;
mod stats;
mod tlb;

pub use cache::{AccessOutcome, Cache, CacheConfig, EvictInfo, FillOutcome, PfSource};
pub use dram::{DramConfig, DramModel, TICKS_PER_CYCLE};
pub use hierarchy::{Access, AccessKind, AccessResult, HitLevel, MemConfig, MemoryHierarchy};
pub use image::{FxHasher, MemDelta, MemImage};
pub use mshr::MshrFile;
pub use stats::{MemStats, PfCounters};
pub use tlb::{Tlb, TlbConfig, WalkerPool};

/// Cache line size in bytes (Table III: 64 B everywhere).
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes for TLB modeling.
pub const PAGE_BYTES: u64 = 4096;

/// Returns the line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Returns the page number containing `addr`.
#[inline]
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_BYTES
}
