//! The composed memory hierarchy: TLB → L1 → MSHRs → L2 → DRAM, with
//! attached prefetchers. This is the single timing entry point used by all
//! core models.

use crate::cache::{Cache, CacheConfig, PfSource, PfTag};
use crate::dram::{DramConfig, DramModel};
use crate::image::MemImage;
use crate::line_of;
use crate::mshr::MshrFile;
use crate::prefetch::{
    DemandInfo, ImpConfig, ImpPrefetcher, Prefetcher, StrideConfig, StridePrefetcher,
};
use crate::stats::MemStats;
use crate::tlb::{Tlb, TlbConfig, WalkerPool};
use svr_trace::{MemKind, MemLevel, NullSink, PfEvent, TraceEvent, TraceSink};

/// Remembers, per victim line, the prefetch whose fill evicted it from the
/// LLC, so a later demand miss on that line can be charged to the polluting
/// prefetch (the "pollution" leg of the efficacy taxonomy).
///
/// The map is exact: every tagged victim is remembered until its next L2
/// miss consumes the tag, so the `pollution` counter is the true count, not
/// the lower bound the old 4096-slot direct-mapped filter gave (a
/// conflicting insert used to forget the older victim). Memory is bounded
/// by the number of distinct lines whose last L2 eviction was by a prefetch
/// fill and that never miss again — proportional to footprint, a few bytes
/// per line, and `take` removes entries on every L2 miss along the way.
#[derive(Debug, Default)]
struct PollutionFilter {
    evictors: std::collections::HashMap<
        u64,
        PfTag,
        std::hash::BuildHasherDefault<crate::image::FxHasher>,
    >,
}

impl PollutionFilter {
    fn new() -> Self {
        PollutionFilter::default()
    }

    /// Records `tag`'s fill as the evictor of the line at `line_addr`.
    fn record(&mut self, line_addr: u64, tag: PfTag) {
        self.evictors.insert(line_addr, tag);
    }

    /// Removes and returns the evictor of the line at `line_addr`.
    fn take(&mut self, line_addr: u64) -> Option<PfTag> {
        self.evictors.remove(&line_addr)
    }
}

/// What kind of access is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand data load from the main thread.
    DemandLoad,
    /// A demand data store from the main thread.
    DemandStore,
    /// An instruction fetch.
    InstFetch,
    /// A prefetch from the given mechanism. SVR transient-lane loads use
    /// `Prefetch(PfSource::Svr)` — they get a real completion time (their
    /// loaded values feed dependent lanes) and tag the lines they fill.
    Prefetch(PfSource),
}

/// One access request.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Cycle at which the request is presented.
    pub now: u64,
    /// Byte address.
    pub addr: u64,
    /// Kind of access.
    pub kind: AccessKind,
    /// PC of the instruction (for prefetcher training).
    pub pc: u64,
    /// Functional value loaded (for value-based prefetchers like IMP).
    pub value: Option<u64>,
}

impl Access {
    /// Creates an access with no PC/value metadata.
    pub fn new(now: u64, addr: u64, kind: AccessKind) -> Self {
        Access {
            now,
            addr,
            kind,
            pc: 0,
            value: None,
        }
    }

    /// Attaches the requesting PC (enables PC-indexed prefetcher training).
    pub fn with_pc(mut self, pc: u64) -> Self {
        self.pc = pc;
        self
    }

    /// Attaches the loaded value (enables IMP indirect detection).
    pub fn with_value(mut self, value: u64) -> Self {
        self.value = Some(value);
        self
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// L1 hit (or coalesced onto an L1 miss already in flight).
    L1,
    /// L2 hit.
    L2,
    /// Main memory.
    Dram,
}

impl AccessKind {
    /// The trace-event classification of this access.
    fn mem_kind(self) -> MemKind {
        match self {
            AccessKind::DemandLoad => MemKind::DemandLoad,
            AccessKind::DemandStore => MemKind::DemandStore,
            AccessKind::InstFetch => MemKind::InstFetch,
            AccessKind::Prefetch(PfSource::Stride) => MemKind::StridePf,
            AccessKind::Prefetch(PfSource::Imp) => MemKind::ImpPf,
            AccessKind::Prefetch(PfSource::Svr) => MemKind::SvrPf,
        }
    }
}

impl HitLevel {
    /// The trace-event classification of this level.
    fn mem_level(self) -> MemLevel {
        match self {
            HitLevel::L1 => MemLevel::L1,
            HitLevel::L2 => MemLevel::L2,
            HitLevel::Dram => MemLevel::Dram,
        }
    }
}

/// Timing outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// When the request actually started (≥ `now`; later if it had to wait
    /// for an MSHR or page-table walker).
    pub issued_at: u64,
    /// When the data is available to dependents.
    pub complete_at: u64,
    /// Level that supplied the data.
    pub level: HitLevel,
}

/// Hierarchy configuration (defaults = Table III).
#[derive(Debug, Clone)]
pub struct MemConfig {
    /// L1-D geometry.
    pub l1d: CacheConfig,
    /// L1-I geometry.
    pub l1i: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L1 load-to-use latency in cycles.
    pub l1_latency: u64,
    /// L2 load-to-use latency in cycles.
    pub l2_latency: u64,
    /// Number of L1-D MSHRs.
    pub mshrs: usize,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// TLB parameters.
    pub tlb: TlbConfig,
    /// Baseline stride prefetcher (present in all paper configs).
    pub stride_pf: Option<StrideConfig>,
    /// IMP indirect prefetcher (the prior-art comparison config).
    pub imp: Option<ImpConfig>,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            l1d: CacheConfig::l1(),
            l1i: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            l1_latency: 3,
            l2_latency: 12,
            mshrs: 16,
            dram: DramConfig::default(),
            tlb: TlbConfig::default(),
            stride_pf: Some(StrideConfig::default()),
            imp: None,
        }
    }
}

/// The full memory system (see module docs).
///
/// # Examples
///
/// ```
/// use svr_mem::{MemoryHierarchy, MemConfig, Access, AccessKind, HitLevel};
/// let mut hier = MemoryHierarchy::new(MemConfig::default());
/// let r = hier.access(Access::new(0, 0x4000, AccessKind::DemandLoad));
/// assert_eq!(r.level, HitLevel::Dram);
/// let r2 = hier.access(Access::new(r.complete_at, 0x4000, AccessKind::DemandLoad));
/// assert_eq!(r2.level, HitLevel::L1);
/// ```
#[derive(Debug)]
pub struct MemoryHierarchy<S: TraceSink = NullSink> {
    config: MemConfig,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    mshrs: MshrFile,
    dram: DramModel,
    dtlb: Tlb,
    itlb: Tlb,
    walkers: WalkerPool,
    stride_pf: Option<StridePrefetcher>,
    imp: Option<ImpPrefetcher>,
    stats: MemStats,
    pollution: PollutionFilter,
    /// Set by [`MemoryHierarchy::finalize`]; gates the prefetch-ledger
    /// invariant (which only balances once residents are counted).
    finalized: bool,
    pf_scratch: Vec<u64>,
    /// Optional hook address region: instruction fetches are mapped here.
    inst_base: u64,
    sink: S,
}

impl MemoryHierarchy<NullSink> {
    /// Creates an empty, untraced hierarchy.
    pub fn new(config: MemConfig) -> Self {
        Self::with_sink(config, NullSink)
    }
}

impl<S: TraceSink> MemoryHierarchy<S> {
    /// Creates an empty hierarchy that streams trace events into `sink`.
    pub fn with_sink(config: MemConfig, sink: S) -> Self {
        MemoryHierarchy {
            l1d: Cache::new(config.l1d),
            l1i: Cache::new(config.l1i),
            l2: Cache::new(config.l2),
            mshrs: MshrFile::new(config.mshrs),
            dram: DramModel::new(config.dram),
            dtlb: Tlb::new(config.tlb),
            itlb: Tlb::new(config.tlb),
            walkers: WalkerPool::new(config.tlb.walkers),
            stride_pf: config.stride_pf.map(StridePrefetcher::new),
            imp: config.imp.map(ImpPrefetcher::new),
            config,
            stats: MemStats::default(),
            pollution: PollutionFilter::new(),
            finalized: false,
            pf_scratch: Vec::new(),
            inst_base: 0x4000_0000,
            sink,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// The attached trace sink (e.g. to inspect a `RingSink` after a run).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Emits a trace event. Call sites in the cores and SVR engine must
    /// guard with `if S::ENABLED` so disabled tracing compiles away.
    #[inline(always)]
    pub fn trace(&mut self, ev: &TraceEvent) {
        if S::ENABLED {
            self.sink.emit(ev);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Total DRAM line transfers (reads + writebacks).
    pub fn dram_traffic_lines(&self) -> u64 {
        self.dram.reads() + self.dram.writes()
    }

    /// Outstanding L1-D MSHR entries at `now` (watchdog diagnostics).
    pub fn mshrs_in_flight(&mut self, now: u64) -> usize {
        self.mshrs.in_flight(now)
    }

    /// Checks the hierarchy's cross-counter identities, which hold by
    /// construction and break only under real accounting bugs:
    ///
    /// * every demand L2 miss goes to DRAM exactly once, so
    ///   `dram_demand_data == l2_misses`;
    /// * only demand L1-D misses that neither coalesce nor hit an in-flight
    ///   line reach the L2, so `l2_hits + l2_misses <= l1d_misses`;
    /// * the MSHR file's retire watermark must not strand entries
    ///   ([`MshrFile::check_invariants`]);
    /// * after [`MemoryHierarchy::finalize`], each prefetch source's ledger
    ///   balances: `issued == used + late + evicted_unused +
    ///   resident_at_end`.
    ///
    /// Runs in O(MSHR capacity); callers check once per completed run, so
    /// violations surface in release builds too (not just debug asserts).
    pub fn check_invariants(&self) -> Result<(), String> {
        let s = &self.stats;
        if s.dram_demand_data != s.l2_misses {
            return Err(format!(
                "demand DRAM traffic diverged from L2 misses: \
                 dram_demand_data={} l2_misses={}",
                s.dram_demand_data, s.l2_misses
            ));
        }
        if s.l2_hits + s.l2_misses > s.l1d_misses {
            return Err(format!(
                "more demand L2 lookups than L1-D misses: l2_hits={} \
                 l2_misses={} l1d_misses={}",
                s.l2_hits, s.l2_misses, s.l1d_misses
            ));
        }
        if self.finalized {
            for (name, c) in [("stride", &s.stride), ("imp", &s.imp), ("svr", &s.svr)] {
                if !c.outcomes_balance() {
                    return Err(format!(
                        "{name} prefetch ledger out of balance: issued={} \
                         used={} late={} evicted_unused={} resident_at_end={}",
                        c.issued, c.used, c.late, c.evicted_unused, c.resident_at_end
                    ));
                }
            }
        }
        self.mshrs.check_invariants()
    }

    /// Ends the run's prefetch ledger: every still-resident, never-demanded
    /// prefetched line (in L1-D or L2) is counted as `resident_at_end`, so
    /// each source's outcomes balance against `issued` — enforced by
    /// [`MemoryHierarchy::check_invariants`] from then on. Idempotent; call
    /// once when the simulated program halts.
    pub fn finalize(&mut self, now: u64) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        let resident: Vec<PfTag> = self
            .l1d
            .resident_pf_tags()
            .chain(self.l2.resident_pf_tags())
            .collect();
        for tag in resident {
            self.stats.pf_mut(tag.src).resident_at_end += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Pf {
                    cycle: now,
                    kind: AccessKind::Prefetch(tag.src).mem_kind(),
                    pc: tag.pc,
                    outcome: PfEvent::Resident,
                });
            }
        }
    }

    /// Whether [`MemoryHierarchy::finalize`] has run.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// Performs a data-side access without prefetcher training (used
    /// internally and by SVR transient lanes via `Prefetch(Svr)`).
    fn access_data_path(&mut self, now: u64, addr: u64, kind: AccessKind, pc: u64) -> AccessResult {
        // Translation.
        let (tlat, walked) = self.dtlb.translate(now, addr, &mut self.walkers);
        if walked {
            self.stats.tlb_walks += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::TlbWalk {
                    cycle: now,
                    done: now + tlat,
                    pc,
                });
            }
        }
        let mut t = now + tlat;
        let is_store = kind == AccessKind::DemandStore;
        let is_demand = matches!(kind, AccessKind::DemandLoad | AccessKind::DemandStore);
        let line = line_of(addr);

        // L1 lookup; only demand accesses consume prefetch tags.
        let outcome = self.l1d.access(addr, is_store, is_demand);
        if outcome.hit {
            if is_demand {
                self.stats.l1d_hits += 1;
            }
            // Lines are installed eagerly at request time; a "hit" on a line
            // whose fill is still in flight completes when the fill does
            // (hit-under-miss / MSHR coalescing).
            let outstanding = self.mshrs.outstanding(line, t);
            if let Some(tag) = outcome.first_use_of {
                // First demand touch of a prefetched line. If the fill is
                // still in flight, the prefetch was wanted but hid only part
                // of the miss latency: *late*, not fully used.
                let pf_outcome = if outstanding.is_some() {
                    self.stats.pf_mut(tag.src).late += 1;
                    PfEvent::Late
                } else {
                    self.stats.pf_mut(tag.src).used += 1;
                    PfEvent::Used
                };
                if S::ENABLED {
                    self.sink.emit(&TraceEvent::Pf {
                        cycle: t,
                        kind: AccessKind::Prefetch(tag.src).mem_kind(),
                        pc: tag.pc,
                        outcome: pf_outcome,
                    });
                }
            }
            let ready = outstanding.unwrap_or(t).max(t + self.config.l1_latency);
            if S::ENABLED {
                if outstanding.is_some() {
                    // Hit on a line whose fill is still in flight — this is
                    // the common MSHR-coalesce shape (fills are eager).
                    self.sink.emit(&TraceEvent::MshrCoalesce { cycle: t, line });
                }
                self.sink.emit(&TraceEvent::Mem {
                    start: now,
                    complete: ready,
                    addr,
                    level: MemLevel::L1,
                    kind: kind.mem_kind(),
                    pc,
                    miss: false,
                });
            }
            return AccessResult {
                issued_at: now,
                complete_at: ready,
                level: HitLevel::L1,
            };
        }
        if is_demand {
            self.stats.l1d_misses += 1;
        }

        // Coalesce onto an outstanding miss for the same line.
        if let Some(ready) = self.mshrs.outstanding(line, t) {
            let complete = ready.max(t + self.config.l1_latency);
            if S::ENABLED {
                self.sink.emit(&TraceEvent::MshrCoalesce { cycle: t, line });
                self.sink.emit(&TraceEvent::Mem {
                    start: now,
                    complete,
                    addr,
                    level: MemLevel::L1,
                    kind: kind.mem_kind(),
                    pc,
                    miss: is_demand,
                });
            }
            return AccessResult {
                issued_at: now,
                complete_at: complete,
                level: HitLevel::L1,
            };
        }

        // Need an MSHR.
        self.mshrs.retire(t);
        if self.mshrs.in_flight(t) >= self.mshrs.capacity() {
            match kind {
                // Speculative prefetchers drop on structural hazard.
                AccessKind::Prefetch(PfSource::Stride) | AccessKind::Prefetch(PfSource::Imp) => {
                    return AccessResult {
                        issued_at: now,
                        complete_at: t,
                        level: HitLevel::L1,
                    };
                }
                // Demand and SVR lanes wait for a free MSHR.
                _ => {
                    let free = self.mshrs.earliest_free().unwrap_or(t).max(t);
                    t = free;
                    self.mshrs.retire(t);
                }
            }
        }

        // L2 lookup; only demand accesses consume prefetch tags.
        let l2_out = self.l2.access(addr, false, is_demand);
        if let Some(tag) = l2_out.first_use_of {
            // Demand touch of a line the prefetcher kept in the LLC: the
            // DRAM latency was hidden, so the prefetch counts as used.
            self.stats.pf_mut(tag.src).used += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Pf {
                    cycle: t,
                    kind: AccessKind::Prefetch(tag.src).mem_kind(),
                    pc: tag.pc,
                    outcome: PfEvent::Used,
                });
            }
        }
        let (ready, level) = if l2_out.hit {
            if is_demand {
                self.stats.l2_hits += 1;
            }
            (t + self.config.l2_latency, HitLevel::L2)
        } else {
            // The line is being (re)installed below, so its evicted-by
            // record is finished either way; a *demand* miss on a
            // remembered victim is pollution, charged to the evictor.
            let polluter = self.pollution.take(line);
            if is_demand {
                self.stats.l2_misses += 1;
                if let Some(tag) = polluter {
                    self.stats.pf_mut(tag.src).pollution += 1;
                    if S::ENABLED {
                        self.sink.emit(&TraceEvent::Pf {
                            cycle: t,
                            kind: AccessKind::Prefetch(tag.src).mem_kind(),
                            pc: tag.pc,
                            outcome: PfEvent::Pollution,
                        });
                    }
                }
            }
            let done = self.dram.access(t + self.config.l2_latency, false);
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Dram {
                    enter: t + self.config.l2_latency,
                    leave: done,
                    write: false,
                });
            }
            match kind {
                AccessKind::DemandLoad | AccessKind::DemandStore => {
                    self.stats.dram_demand_data += 1
                }
                AccessKind::InstFetch => self.stats.dram_inst += 1,
                AccessKind::Prefetch(PfSource::Stride) => self.stats.dram_stride_pf += 1,
                AccessKind::Prefetch(PfSource::Imp) => self.stats.dram_imp_pf += 1,
                AccessKind::Prefetch(PfSource::Svr) => self.stats.dram_svr_pf += 1,
            }
            (done, HitLevel::Dram)
        };

        let allocated = self.mshrs.try_alloc(line, ready);
        if S::ENABLED && allocated {
            // Fill time is known eagerly, so the retirement is emitted now
            // with its future timestamp.
            self.sink.emit(&TraceEvent::MshrAlloc {
                cycle: t,
                line,
                fill_at: ready,
            });
            self.sink.emit(&TraceEvent::MshrRetire { cycle: ready, line });
        }

        // Fill caches; dirty-evictions create writebacks.
        let pf_tag = match kind {
            AccessKind::Prefetch(src) => {
                // The ledger admits a prefetch only here, when its line is
                // actually installed — in-cache, coalesced and structurally
                // dropped requests never get this far — so every `issued`
                // line reaches exactly one terminal outcome.
                self.stats.pf_mut(src).issued += 1;
                if S::ENABLED {
                    self.sink.emit(&TraceEvent::Pf {
                        cycle: t,
                        kind: kind.mem_kind(),
                        pc,
                        outcome: PfEvent::Issued,
                    });
                }
                Some(PfTag::new(src, pc))
            }
            _ => None,
        };
        // Writebacks drain from a write buffer at eviction time; they only
        // consume channel bandwidth and never delay the read's fill.
        if level == HitLevel::Dram {
            let out = self.l2.fill(addr, false, None, is_demand);
            if let Some(tag) = out.first_use_of {
                // Racing demand fill over a prefetch-tagged L2 line: this is
                // the line's first demand use, not a stale tag to keep.
                self.stats.pf_mut(tag.src).used += 1;
                if S::ENABLED {
                    self.sink.emit(&TraceEvent::Pf {
                        cycle: t,
                        kind: AccessKind::Prefetch(tag.src).mem_kind(),
                        pc: tag.pc,
                        outcome: PfEvent::Used,
                    });
                }
            }
            if let Some(ev) = out.evicted {
                if let AccessKind::Prefetch(src) = kind {
                    // Remember who pushed this victim out of the LLC, so a
                    // later demand miss on it can be charged as pollution.
                    self.pollution
                        .record(line_of(ev.line_addr), PfTag::new(src, pc));
                }
                if ev.dirty {
                    self.stats.writebacks += 1;
                    let wb_done = self.dram.access(t, true);
                    if S::ENABLED {
                        self.sink.emit(&TraceEvent::Dram {
                            enter: t,
                            leave: wb_done,
                            write: true,
                        });
                    }
                }
                if let Some(tag) = ev.pf_unused {
                    // Gone from the LLC without a demand touch (§IV-A7 /
                    // Fig. 13a count prefetches against LLC eviction).
                    self.stats.pf_mut(tag.src).evicted_unused += 1;
                    if S::ENABLED {
                        self.sink.emit(&TraceEvent::Pf {
                            cycle: t,
                            kind: AccessKind::Prefetch(tag.src).mem_kind(),
                            pc: tag.pc,
                            outcome: PfEvent::EvictedUnused,
                        });
                    }
                }
            }
        }
        let out = self.l1d.fill(addr, is_store, pf_tag, is_demand);
        if let Some(tag) = out.first_use_of {
            self.stats.pf_mut(tag.src).used += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Pf {
                    cycle: t,
                    kind: AccessKind::Prefetch(tag.src).mem_kind(),
                    pc: tag.pc,
                    outcome: PfEvent::Used,
                });
            }
        }
        if let Some(ev) = out.evicted {
            if let Some(tag) = ev.pf_unused {
                // Still resident in L2: the tag migrates; the prefetch only
                // counts as wasted once it leaves the LLC untouched. A
                // refused migration (victim L2 line already carries a tag)
                // closes this ledger entry as evicted-unused instead.
                if !self.l2.tag_line(ev.line_addr, tag) {
                    self.stats.pf_mut(tag.src).evicted_unused += 1;
                    if S::ENABLED {
                        self.sink.emit(&TraceEvent::Pf {
                            cycle: t,
                            kind: AccessKind::Prefetch(tag.src).mem_kind(),
                            pc: tag.pc,
                            outcome: PfEvent::EvictedUnused,
                        });
                    }
                }
            }
            if ev.dirty {
                // Writeback to L2; if it misses there it goes to DRAM.
                if !self.l2.probe(ev.line_addr) {
                    self.stats.writebacks += 1;
                    let wb_done = self.dram.access(t, true);
                    if S::ENABLED {
                        self.sink.emit(&TraceEvent::Dram {
                            enter: t,
                            leave: wb_done,
                            write: true,
                        });
                    }
                }
                // A writeback fill is not a demand touch: it must not
                // consume a prefetch tag on a resident line. It can still
                // evict a tagged L2 victim, whose ledger entry closes here
                // as evicted-unused (same rule as any other L2 fill).
                let wb = self.l2.fill(ev.line_addr, true, None, false);
                if let Some(wb_ev) = wb.evicted {
                    if let Some(tag) = wb_ev.pf_unused {
                        self.stats.pf_mut(tag.src).evicted_unused += 1;
                        if S::ENABLED {
                            self.sink.emit(&TraceEvent::Pf {
                                cycle: t,
                                kind: AccessKind::Prefetch(tag.src).mem_kind(),
                                pc: tag.pc,
                                outcome: PfEvent::EvictedUnused,
                            });
                        }
                    }
                }
            }
        }

        if S::ENABLED {
            self.sink.emit(&TraceEvent::Mem {
                start: now,
                complete: ready,
                addr,
                level: level.mem_level(),
                kind: kind.mem_kind(),
                pc,
                miss: is_demand,
            });
        }
        AccessResult {
            issued_at: now,
            complete_at: ready,
            level,
        }
    }

    /// Performs an access, training the prefetchers on demand traffic and
    /// issuing any prefetches they request.
    pub fn access(&mut self, acc: Access) -> AccessResult {
        self.access_with_image(acc, None)
    }


    /// Like [`MemoryHierarchy::access`], with a functional image so
    /// value-based prefetchers (IMP) can compute indirect targets.
    pub fn access_with_image(&mut self, acc: Access, image: Option<&MemImage>) -> AccessResult {
        if acc.kind == AccessKind::InstFetch {
            return self.fetch_inst(acc.now, acc.addr);
        }
        let res = self.access_data_path(acc.now, acc.addr, acc.kind, acc.pc);
        // Train prefetchers on demand traffic only.
        if (self.stride_pf.is_some() || self.imp.is_some())
            && matches!(acc.kind, AccessKind::DemandLoad | AccessKind::DemandStore)
        {
            let info = DemandInfo {
                pc: acc.pc,
                addr: acc.addr,
                value: if acc.kind == AccessKind::DemandLoad {
                    acc.value
                } else {
                    None
                },
                was_miss: res.level != HitLevel::L1,
            };
            let empty;
            let img = match image {
                Some(i) => i,
                None => {
                    empty = MemImage::new();
                    &empty
                }
            };
            let mut scratch = std::mem::take(&mut self.pf_scratch);
            scratch.clear();
            if let Some(pf) = self.stride_pf.as_mut() {
                pf.on_demand(info, img, &mut scratch);
                let n = scratch.len();
                self.issue_prefetches(acc.now, &scratch, PfSource::Stride, 0, n, acc.pc);
            }
            if let Some(imp) = self.imp.as_mut() {
                let start = scratch.len();
                imp.on_demand(info, img, &mut scratch);
                let n = scratch.len();
                self.issue_prefetches(acc.now, &scratch, PfSource::Imp, start, n, acc.pc);
            }
            scratch.clear();
            self.pf_scratch = scratch;
        }
        res
    }

    /// `pc` is the demand load that triggered these prefetches; outcomes
    /// are attributed to it in the per-PC efficacy breakdowns.
    fn issue_prefetches(
        &mut self,
        now: u64,
        addrs: &[u64],
        src: PfSource,
        start: usize,
        end: usize,
        pc: u64,
    ) {
        for &addr in &addrs[start..end] {
            if self.l1d.prefetch_probe(addr) {
                continue; // already cached
            }
            self.access_data_path(now, addr, AccessKind::Prefetch(src), pc);
        }
    }

    /// Instruction fetch: consults the L1-I (then L2/DRAM). `addr` is a PC
    /// (instruction index); it is mapped into a dedicated text segment.
    pub fn fetch_inst(&mut self, now: u64, pc: u64) -> AccessResult {
        let addr = self.inst_base + pc * 4;
        let (tlat, walked) = self.itlb.translate(now, addr, &mut self.walkers);
        if walked {
            self.stats.tlb_walks += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::TlbWalk {
                    cycle: now,
                    done: now + tlat,
                    pc,
                });
            }
        }
        let t = now + tlat;
        let out = self.l1i.access(addr, false, true);
        if out.hit {
            self.stats.l1i_hits += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Mem {
                    start: now,
                    complete: t + 1,
                    addr,
                    level: MemLevel::L1,
                    kind: MemKind::InstFetch,
                    pc,
                    miss: false,
                });
            }
            return AccessResult {
                issued_at: now,
                complete_at: t + 1,
                level: HitLevel::L1,
            };
        }
        self.stats.l1i_misses += 1;
        let l2_out = self.l2.access(addr, false, true);
        if let Some(tag) = l2_out.first_use_of {
            // Text and data share the L2; an ifetch landing on a
            // prefetch-tagged line still closes that ledger entry.
            self.stats.pf_mut(tag.src).used += 1;
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Pf {
                    cycle: t,
                    kind: AccessKind::Prefetch(tag.src).mem_kind(),
                    pc: tag.pc,
                    outcome: PfEvent::Used,
                });
            }
        }
        let (ready, level) = if l2_out.hit {
            (t + self.config.l2_latency, HitLevel::L2)
        } else {
            let done = self.dram.access(t + self.config.l2_latency, false);
            if S::ENABLED {
                self.sink.emit(&TraceEvent::Dram {
                    enter: t + self.config.l2_latency,
                    leave: done,
                    write: false,
                });
            }
            self.stats.dram_inst += 1;
            // Text and data share the L2, so an instruction fill can evict a
            // prefetch-tagged data line; that tag's ledger entry closes here
            // as evicted-unused (same rule as the data-path L2 fill), or the
            // `issued == outcomes` balance breaks at finalize.
            let out = self.l2.fill(addr, false, None, true);
            if let Some(ev) = out.evicted {
                if let Some(tag) = ev.pf_unused {
                    self.stats.pf_mut(tag.src).evicted_unused += 1;
                    if S::ENABLED {
                        self.sink.emit(&TraceEvent::Pf {
                            cycle: t,
                            kind: AccessKind::Prefetch(tag.src).mem_kind(),
                            pc: tag.pc,
                            outcome: PfEvent::EvictedUnused,
                        });
                    }
                }
            }
            (done, HitLevel::Dram)
        };
        self.l1i.fill(addr, false, None, true);
        if S::ENABLED {
            self.sink.emit(&TraceEvent::Mem {
                start: now,
                complete: ready,
                addr,
                level: level.mem_level(),
                kind: MemKind::InstFetch,
                pc,
                miss: true,
            });
        }
        AccessResult {
            issued_at: now,
            complete_at: ready,
            level,
        }
    }

    /// Earliest cycle a new L1-D miss could allocate an MSHR at/after `now`.
    pub fn mshr_free_at(&mut self, now: u64) -> u64 {
        if self.mshrs.in_flight(now) < self.mshrs.capacity() {
            now
        } else {
            self.mshrs.earliest_free().unwrap_or(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(MemConfig {
            stride_pf: None,
            ..MemConfig::default()
        })
    }

    #[test]
    fn dram_then_l1_hit() {
        let mut h = hier();
        let r = h.access(Access::new(0, 0x10000, AccessKind::DemandLoad));
        assert_eq!(r.level, HitLevel::Dram);
        assert!(r.complete_at >= 90);
        let r2 = h.access(Access::new(r.complete_at, 0x10000, AccessKind::DemandLoad));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.complete_at - r2.issued_at, 3);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = hier();
        // Fill a line, then evict it from L1 by filling 4 more lines mapping
        // to the same set (L1: 256 sets, 4 ways -> set stride 16 KiB).
        h.access(Access::new(0, 0x0, AccessKind::DemandLoad));
        for i in 1..=4u64 {
            h.access(Access::new(1000 * i, i * 16384, AccessKind::DemandLoad));
        }
        let r = h.access(Access::new(100_000, 0x0, AccessKind::DemandLoad));
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn same_line_coalesces_no_extra_dram() {
        let mut h = hier();
        let r1 = h.access(Access::new(0, 0x40, AccessKind::DemandLoad));
        let r2 = h.access(Access::new(1, 0x48, AccessKind::DemandLoad));
        assert_eq!(h.stats().dram_demand_data, 1);
        assert_eq!(r2.complete_at, r1.complete_at.max(1 + 3));
    }

    #[test]
    fn mshr_pressure_delays_demand() {
        let mut h = MemoryHierarchy::new(MemConfig {
            mshrs: 1,
            stride_pf: None,
            ..MemConfig::default()
        });
        let r1 = h.access(Access::new(0, 0x0, AccessKind::DemandLoad));
        let r2 = h.access(Access::new(0, 0x1000, AccessKind::DemandLoad));
        // Second miss had to wait for the only MSHR.
        assert!(r2.complete_at > r1.complete_at);
    }

    #[test]
    fn svr_prefetch_tags_and_demand_use() {
        let mut h = hier();
        let r = h.access(Access::new(0, 0x2000, AccessKind::Prefetch(PfSource::Svr)));
        assert_eq!(r.level, HitLevel::Dram);
        assert_eq!(h.stats().dram_svr_pf, 1);
        let r2 = h.access(Access::new(r.complete_at, 0x2000, AccessKind::DemandLoad));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(h.stats().svr.used, 1);
    }

    #[test]
    fn store_allocates_and_writeback_counted() {
        let mut h = hier();
        h.access(Access::new(0, 0x0, AccessKind::DemandStore));
        // Evict the dirty line from L1 *and* L2: lines at 64 KiB stride map
        // to L1 set 0 and L2 set 0 simultaneously.
        for i in 1..=14u64 {
            h.access(Access::new(1000 * i, i * 65536, AccessKind::DemandLoad));
        }
        assert!(h.stats().writebacks >= 1);
    }

    #[test]
    fn inst_fetch_path() {
        let mut h = hier();
        let r = h.fetch_inst(0, 0);
        assert_eq!(r.level, HitLevel::Dram);
        let r2 = h.fetch_inst(r.complete_at, 1); // same line (4B insts)
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(h.stats().l1i_hits, 1);
    }

    #[test]
    fn stride_prefetcher_reduces_misses_on_streaming() {
        let run = |pf: bool| -> u64 {
            let mut h = MemoryHierarchy::new(MemConfig {
                stride_pf: pf.then(StrideConfig::default),
                ..MemConfig::default()
            });
            let mut t = 0;
            for i in 0..512u64 {
                let r =
                    h.access(Access::new(t, 0x10_0000 + i * 64, AccessKind::DemandLoad).with_pc(7));
                t = r.complete_at;
            }
            h.stats().l1d_misses
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < without / 2,
            "stride pf should cover most misses: {with} vs {without}"
        );
    }

    #[test]
    fn prefetch_to_cached_line_is_dropped() {
        let mut h = hier();
        h.access(Access::new(0, 0x40, AccessKind::DemandLoad));
        let before = h.stats().dram_reads();
        // A direct data-path prefetch would hit; via issue_prefetches it is
        // dropped, so simulate the public path: access a line and check stats
        // remain unchanged when re-prefetching.
        let r = h.access(Access::new(500, 0x40, AccessKind::Prefetch(PfSource::Svr)));
        assert_eq!(r.level, HitLevel::L1);
        assert_eq!(h.stats().dram_reads(), before);
    }

    #[test]
    fn traced_hierarchy_emits_miss_lifecycle_events() {
        use svr_trace::RingSink;
        let mut h = MemoryHierarchy::with_sink(
            MemConfig {
                stride_pf: None,
                ..MemConfig::default()
            },
            RingSink::new(1024),
        );
        let r = h.access(Access::new(0, 0x10000, AccessKind::DemandLoad));
        assert_eq!(r.level, HitLevel::Dram);
        h.access(Access::new(1, 0x10008, AccessKind::DemandLoad)); // coalesce
        let kinds: Vec<&str> = h.sink.iter().map(TraceEvent::kind_name).collect();
        for expected in ["mem", "mshr_alloc", "mshr_retire", "dram", "mshr_coalesce"] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
        // The DRAM span matches the miss completion computed by the access.
        let dram = h
            .sink
            .iter()
            .find_map(|ev| match *ev {
                TraceEvent::Dram { enter, leave, .. } => Some((enter, leave)),
                _ => None,
            })
            .expect("dram span");
        assert_eq!(dram.1, r.complete_at);
        assert!(dram.0 < dram.1);
    }

    #[test]
    fn traced_and_untraced_timings_agree() {
        use svr_trace::RingSink;
        let cfg = || MemConfig::default();
        let mut plain = MemoryHierarchy::new(cfg());
        let mut traced = MemoryHierarchy::with_sink(cfg(), RingSink::new(64));
        let mut t = 0;
        for i in 0..256u64 {
            let addr = (i * 97) % 4096 * 64;
            let a = Access::new(t, addr, AccessKind::DemandLoad).with_pc(3);
            let r1 = plain.access(a);
            let r2 = traced.access(a);
            assert_eq!(r1, r2, "iteration {i}");
            t = r1.complete_at;
        }
        assert_eq!(plain.stats(), traced.stats());
        assert!(traced.sink.total() > 0);
    }

    #[test]
    fn demand_racing_in_flight_prefetch_counts_late() {
        let mut h = hier();
        let r = h.access(Access::new(0, 0x2000, AccessKind::Prefetch(PfSource::Svr)).with_pc(9));
        assert_eq!(r.level, HitLevel::Dram);
        // Demand touch while the prefetch fill is still in flight.
        let r2 = h.access(Access::new(5, 0x2000, AccessKind::DemandLoad));
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.complete_at, r.complete_at);
        assert_eq!(h.stats().svr.late, 1);
        assert_eq!(h.stats().svr.used, 0);
    }

    #[test]
    fn prefetch_ledger_balances_after_finalize() {
        let mut h = hier();
        h.access(Access::new(0, 0x2000, AccessKind::Prefetch(PfSource::Svr)).with_pc(9));
        h.access(Access::new(0, 0x3000, AccessKind::Prefetch(PfSource::Svr)).with_pc(9));
        h.access(Access::new(500, 0x2000, AccessKind::DemandLoad));
        h.finalize(1000);
        h.finalize(1001); // idempotent
        let svr = h.stats().svr;
        assert_eq!(svr.issued, 2);
        assert_eq!(svr.used, 1);
        assert_eq!(svr.resident_at_end, 1);
        assert!(svr.outcomes_balance());
        assert!(h.is_finalized());
        h.check_invariants().expect("ledger balances");
    }

    #[test]
    fn inst_fill_evicting_tagged_line_closes_ledger() {
        let mut h = hier();
        // Plant a tag on line 0x0 and migrate it to the L2 by pushing the
        // line out of the L1-D (16 KiB stride shares its L1 set but not its
        // L2 set, so the L2 copy stays put).
        let r = h.access(Access::new(0, 0x0, AccessKind::Prefetch(PfSource::Imp)).with_pc(4));
        let mut t = r.complete_at + 1;
        for i in 1..=4u64 {
            let r = h.access(Access::new(t, i * 16384, AccessKind::DemandLoad));
            t = r.complete_at + 1;
        }
        // Instruction lines at 64 KiB stride land in the L2 set holding 0x0
        // (text base is 64 KiB-aligned); eight of them fill the remaining
        // ways and then evict the tagged line from the shared L2.
        for k in 0..8u64 {
            let r = h.fetch_inst(t, k * 16384);
            t = r.complete_at + 1;
        }
        h.finalize(t);
        let imp = h.stats().imp;
        assert_eq!(imp.issued, 1);
        assert_eq!(imp.evicted_unused, 1, "ifetch eviction must close the entry");
        assert_eq!(imp.resident_at_end, 0);
        assert!(imp.outcomes_balance());
        h.check_invariants().expect("ledger balances");
    }

    #[test]
    fn writeback_fill_evicting_tagged_line_closes_ledger() {
        let mut h = hier();
        // Dirty line 0x0 in the L1-D, with an L2 copy in set 0.
        h.access(Access::new(0, 0x0, AccessKind::DemandStore));
        // Tagged prefetch to 0x10000 (same L1 set, L2 set 0).
        let r = h.access(Access::new(200, 0x10000, AccessKind::Prefetch(PfSource::Imp)).with_pc(4));
        let mut t = r.complete_at + 1;
        // Re-touch 0x0 so the prefetched line is the L1 LRU victim; three
        // demand loads then push it out, migrating its tag to the L2 copy.
        h.access(Access::new(t, 0x0, AccessKind::DemandStore));
        for i in 1..=3u64 {
            let r = h.access(Access::new(t + i, i * 16384, AccessKind::DemandLoad));
            t = r.complete_at + 1;
        }
        // Instruction fills (64 KiB stride lands in L2 set 0, L1-D untouched)
        // fill the set's six free ways and then evict 0x0 from the L2,
        // leaving the tagged line as the set's oldest valid way.
        for k in 0..7u64 {
            let r = h.fetch_inst(t, k * 16384);
            t = r.complete_at + 1;
        }
        // Evict dirty 0x0 from the L1-D (0x20000's line shares the L1 set
        // but not L2 set 0): its writeback re-installs 0x0 in L2 set 0,
        // evicting the tagged line from the LLC.
        let r = h.access(Access::new(t, 0x20000 + 16384, AccessKind::DemandLoad));
        t = r.complete_at + 1;
        h.finalize(t);
        let imp = h.stats().imp;
        assert_eq!(imp.issued, 1);
        assert_eq!(imp.evicted_unused, 1, "writeback eviction must close the entry");
        assert_eq!(imp.resident_at_end, 0);
        assert!(imp.outcomes_balance());
        h.check_invariants().expect("ledger balances");
    }

    #[test]
    fn demand_miss_on_prefetch_victim_counts_pollution() {
        let mut h = hier();
        let r = h.access(Access::new(0, 0x0, AccessKind::DemandLoad));
        let mut t = r.complete_at;
        // Lines at 64 KiB stride share both the L1 set and the L2 set with
        // 0x0; enough prefetch fills evict it from L1 and then from the LLC.
        for i in 1..=8u64 {
            let r = h
                .access(Access::new(t, i * 65536, AccessKind::Prefetch(PfSource::Imp)).with_pc(4));
            t = r.complete_at + 1;
        }
        let r = h.access(Access::new(t, 0x0, AccessKind::DemandLoad));
        assert_eq!(r.level, HitLevel::Dram, "victim must have left the LLC");
        assert_eq!(h.stats().imp.pollution, 1);
    }

    #[test]
    fn pollution_filter_keeps_aliasing_victims() {
        // The old direct-mapped filter indexed on line number mod 4096, so
        // two victims 4096 lines apart overwrote each other and the second
        // demand miss lost its pollution charge. The exact map keeps both.
        let mut f = PollutionFilter::new();
        let a = 0u64;
        let b = 4096 * crate::LINE_BYTES;
        f.record(a, PfTag::new(PfSource::Stride, 1));
        f.record(b, PfTag::new(PfSource::Imp, 2));
        assert_eq!(f.take(a).map(|t| t.src), Some(PfSource::Stride));
        assert_eq!(f.take(b).map(|t| t.src), Some(PfSource::Imp));
        assert_eq!(f.take(a), None, "take consumes the tag");
    }

    #[test]
    fn mshr_free_at_reports_pressure() {
        let mut h = MemoryHierarchy::new(MemConfig {
            mshrs: 1,
            stride_pf: None,
            ..MemConfig::default()
        });
        assert_eq!(h.mshr_free_at(0), 0);
        let r = h.access(Access::new(0, 0x0, AccessKind::DemandLoad));
        assert_eq!(h.mshr_free_at(0), r.complete_at);
    }
}
