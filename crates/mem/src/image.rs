//! Sparse functional memory image with a bump allocator.

use std::collections::HashMap;
use svr_isa::DataMemory;

const PAGE_WORDS: usize = 512; // 4 KiB pages of u64 words

/// A sparse, page-backed flat memory holding the *functional* data of a
/// workload (the caches in this crate model timing only).
///
/// Unmapped reads return 0 so transient/runahead accesses are always safe.
/// A bump allocator hands out disjoint regions for workload data structures.
///
/// # Examples
///
/// ```
/// use svr_mem::MemImage;
/// use svr_isa::DataMemory;
///
/// let mut img = MemImage::new();
/// let a = img.alloc_array(&[1, 2, 3]);
/// assert_eq!(img.read_u64(a + 8), 2);
/// img.write_u64(a + 8, 99);
/// assert_eq!(img.read_u64(a + 8), 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u64; PAGE_WORDS]>>,
    brk: u64,
}

/// Base of the bump-allocated heap.
const HEAP_BASE: u64 = 0x1000_0000;

impl MemImage {
    /// Creates an empty image; allocation starts at a fixed heap base.
    pub fn new() -> Self {
        MemImage {
            pages: HashMap::new(),
            brk: HEAP_BASE,
        }
    }

    /// Allocates `n` 64-bit words, 64-byte aligned; returns the base address.
    /// The region is zero-initialized (by virtue of sparseness).
    pub fn alloc_words(&mut self, n: u64) -> u64 {
        let base = self.brk;
        self.brk += n * 8;
        // Keep allocations line-aligned so arrays do not share cache lines.
        self.brk = (self.brk + 63) & !63;
        base
    }

    /// Allocates and initializes an array of words; returns the base address.
    pub fn alloc_array(&mut self, words: &[u64]) -> u64 {
        let base = self.alloc_words(words.len() as u64);
        for (i, &w) in words.iter().enumerate() {
            self.write_u64(base + 8 * i as u64, w);
        }
        base
    }

    /// Total bytes currently allocated by the bump allocator.
    pub fn allocated_bytes(&self) -> u64 {
        self.brk - HEAP_BASE
    }

    /// Number of distinct mapped 4 KiB pages (touched by writes).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

impl DataMemory for MemImage {
    fn read_u64(&self, addr: u64) -> u64 {
        let page = addr >> 12;
        let word = ((addr >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
        match self.pages.get(&page) {
            Some(p) => p[word],
            None => 0,
        }
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let page = addr >> 12;
        let word = ((addr >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[word] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let img = MemImage::new();
        assert_eq!(img.read_u64(0xdead_beef_000), 0);
    }

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut img = MemImage::new();
        for i in 0..2000u64 {
            img.write_u64(i * 8, i * 3);
        }
        for i in 0..2000u64 {
            assert_eq!(img.read_u64(i * 8), i * 3);
        }
        assert!(img.mapped_pages() >= 3);
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut img = MemImage::new();
        let a = img.alloc_words(5);
        let b = img.alloc_words(1);
        assert!(b >= a + 5 * 8);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(img.allocated_bytes() >= 6 * 8);
    }

    #[test]
    fn alloc_array_initializes() {
        let mut img = MemImage::new();
        let a = img.alloc_array(&[7, 8, 9]);
        assert_eq!(img.read_u64(a), 7);
        assert_eq!(img.read_u64(a + 16), 9);
    }

    #[test]
    fn misaligned_addr_maps_to_containing_word() {
        let mut img = MemImage::new();
        img.write_u64(64, 42);
        // Address within the same word reads the same storage.
        assert_eq!(img.read_u64(64), 42);
    }
}
