//! Sparse functional memory image with a bump allocator.
//!
//! This sits on the simulator's hottest path: every functionally executed
//! load/store goes through [`DataMemory::read_u64`]/[`DataMemory::write_u64`],
//! and the timing model reads values again for prefetcher training and SVR
//! lane loads. The image therefore avoids the default SipHash `HashMap` on
//! every access: pages in the low "dense" address range (which covers the
//! bump-allocated heap of every workload) are resolved by direct indexing
//! into a flat page table, with a one-entry last-page cache in front; only
//! stray high pages fall back to an FxHash-style map.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use svr_isa::DataMemory;

const PAGE_WORDS: usize = 512; // 4 KiB pages of u64 words

/// Pages below this page number use the flat table (direct index); the range
/// covers [0, 1.25 GiB), comfortably containing [`HEAP_BASE`] plus every
/// workload's bump-allocated footprint. Higher pages use the spill map.
const DENSE_PAGES: u64 = 0x5_0000;

/// Sentinel in the flat table meaning "page not mapped".
const NO_SLOT: u32 = u32::MAX;

type Page = Box<[u64; PAGE_WORDS]>;

/// FxHash-style hasher for the spill map: a single multiply-rotate per
/// `u64` write instead of SipHash's full permutation. Not DoS-resistant,
/// which is fine for simulator-internal page numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A sparse, page-backed flat memory holding the *functional* data of a
/// workload (the caches in this crate model timing only).
///
/// Unmapped reads return 0 so transient/runahead accesses are always safe.
/// A bump allocator hands out disjoint regions for workload data structures.
///
/// # Examples
///
/// ```
/// use svr_mem::MemImage;
/// use svr_isa::DataMemory;
///
/// let mut img = MemImage::new();
/// let a = img.alloc_array(&[1, 2, 3]);
/// assert_eq!(img.read_u64(a + 8), 2);
/// img.write_u64(a + 8, 99);
/// assert_eq!(img.read_u64(a + 8), 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    /// Page storage, in mapping order; never shrinks, so slots are stable.
    pages: Vec<Page>,
    /// Flat page table for dense pages: page number → slot + sentinel.
    /// Grown lazily to the highest mapped dense page.
    table: Vec<u32>,
    /// One-entry last-page cache: `(page_number, slot)`. Repeated accesses
    /// to the same page (the overwhelmingly common case: streaming and
    /// line-local accesses) skip the table lookup entirely.
    last: Cell<(u64, u32)>,
    /// Pages at or above [`DENSE_PAGES`] (rare: absolute-address tests).
    spill: HashMap<u64, Page, FxBuildHasher>,
    brk: u64,
}

/// Base of the bump-allocated heap.
const HEAP_BASE: u64 = 0x1000_0000;

impl MemImage {
    /// Creates an empty image; allocation starts at a fixed heap base.
    pub fn new() -> Self {
        MemImage {
            pages: Vec::new(),
            table: Vec::new(),
            last: Cell::new((u64::MAX, NO_SLOT)),
            spill: HashMap::default(),
            brk: HEAP_BASE,
        }
    }

    /// Allocates `n` 64-bit words, 64-byte aligned; returns the base address.
    /// The region is zero-initialized (by virtue of sparseness).
    pub fn alloc_words(&mut self, n: u64) -> u64 {
        let base = self.brk;
        self.brk += n * 8;
        // Keep allocations line-aligned so arrays do not share cache lines.
        self.brk = (self.brk + 63) & !63;
        base
    }

    /// Allocates and initializes an array of words; returns the base address.
    pub fn alloc_array(&mut self, words: &[u64]) -> u64 {
        let base = self.alloc_words(words.len() as u64);
        for (i, &w) in words.iter().enumerate() {
            self.write_u64(base + 8 * i as u64, w);
        }
        base
    }

    /// Total bytes currently allocated by the bump allocator.
    pub fn allocated_bytes(&self) -> u64 {
        self.brk - HEAP_BASE
    }

    /// Number of distinct mapped 4 KiB pages (touched by writes).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len() + self.spill.len()
    }

    /// Looks up the slot of a dense page, consulting the last-page cache.
    #[inline]
    fn dense_slot(&self, page: u64) -> u32 {
        let (last_page, last_slot) = self.last.get();
        if last_page == page {
            return last_slot;
        }
        let slot = match self.table.get(page as usize) {
            Some(&s) => s,
            None => NO_SLOT,
        };
        if slot != NO_SLOT {
            self.last.set((page, slot));
        }
        slot
    }
}

impl DataMemory for MemImage {
    #[inline]
    fn read_u64(&self, addr: u64) -> u64 {
        let page = addr >> 12;
        let word = ((addr >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
        if page < DENSE_PAGES {
            let slot = self.dense_slot(page);
            if slot == NO_SLOT {
                return 0;
            }
            return self.pages[slot as usize][word];
        }
        match self.spill.get(&page) {
            Some(p) => p[word],
            None => 0,
        }
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let page = addr >> 12;
        let word = ((addr >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
        if page < DENSE_PAGES {
            let mut slot = self.dense_slot(page);
            if slot == NO_SLOT {
                if self.table.len() <= page as usize {
                    self.table.resize(page as usize + 1, NO_SLOT);
                }
                slot = self.pages.len() as u32;
                self.pages.push(Box::new([0; PAGE_WORDS]));
                self.table[page as usize] = slot;
                self.last.set((page, slot));
            }
            self.pages[slot as usize][word] = value;
            return;
        }
        self.spill
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[word] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let img = MemImage::new();
        assert_eq!(img.read_u64(0xdead_beef_000), 0);
        assert_eq!(img.read_u64(0x10), 0);
    }

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut img = MemImage::new();
        for i in 0..2000u64 {
            img.write_u64(i * 8, i * 3);
        }
        for i in 0..2000u64 {
            assert_eq!(img.read_u64(i * 8), i * 3);
        }
        assert!(img.mapped_pages() >= 3);
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut img = MemImage::new();
        let a = img.alloc_words(5);
        let b = img.alloc_words(1);
        assert!(b >= a + 5 * 8);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(img.allocated_bytes() >= 6 * 8);
    }

    #[test]
    fn alloc_array_initializes() {
        let mut img = MemImage::new();
        let a = img.alloc_array(&[7, 8, 9]);
        assert_eq!(img.read_u64(a), 7);
        assert_eq!(img.read_u64(a + 16), 9);
    }

    #[test]
    fn misaligned_addr_maps_to_containing_word() {
        let mut img = MemImage::new();
        img.write_u64(64, 42);
        // Address within the same word reads the same storage.
        assert_eq!(img.read_u64(64), 42);
    }

    #[test]
    fn spill_pages_round_trip() {
        // Addresses above the dense range exercise the FxHash spill map.
        let mut img = MemImage::new();
        let high = DENSE_PAGES << 12;
        img.write_u64(high, 11);
        img.write_u64(high + 0x1_0000_0000, 22);
        assert_eq!(img.read_u64(high), 11);
        assert_eq!(img.read_u64(high + 0x1_0000_0000), 22);
        assert_eq!(img.read_u64(high + 8), 0);
        assert_eq!(img.mapped_pages(), 2);
    }

    #[test]
    fn dense_spill_boundary_is_consistent() {
        let mut img = MemImage::new();
        let last_dense = (DENSE_PAGES << 12) - 8;
        let first_spill = DENSE_PAGES << 12;
        img.write_u64(last_dense, 1);
        img.write_u64(first_spill, 2);
        assert_eq!(img.read_u64(last_dense), 1);
        assert_eq!(img.read_u64(first_spill), 2);
    }

    #[test]
    fn interleaved_pages_keep_last_page_cache_coherent() {
        // Alternate between two pages so the one-entry cache thrashes; every
        // read must still see the latest write.
        let mut img = MemImage::new();
        let (a, b) = (HEAP_BASE, HEAP_BASE + 0x10_0000);
        for i in 0..100u64 {
            img.write_u64(a, i);
            img.write_u64(b, i * 2);
            assert_eq!(img.read_u64(a), i);
            assert_eq!(img.read_u64(b), i * 2);
        }
        assert_eq!(img.mapped_pages(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let mut img = MemImage::new();
        img.write_u64(HEAP_BASE, 5);
        let snap = img.clone();
        img.write_u64(HEAP_BASE, 9);
        assert_eq!(snap.read_u64(HEAP_BASE), 5);
        assert_eq!(img.read_u64(HEAP_BASE), 9);
    }
}
