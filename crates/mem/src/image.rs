//! Sparse functional memory image with a bump allocator.
//!
//! This sits on the simulator's hottest path: every functionally executed
//! load/store goes through [`DataMemory::read_u64`]/[`DataMemory::write_u64`],
//! and the timing model reads values again for prefetcher training and SVR
//! lane loads. The image therefore avoids the default SipHash `HashMap` on
//! every access: pages in the low "dense" address range (which covers the
//! bump-allocated heap of every workload) are resolved by direct indexing
//! into a flat page table, with a one-entry last-page cache in front; only
//! stray high pages fall back to an FxHash-style map.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use svr_isa::DataMemory;

const PAGE_WORDS: usize = 512; // 4 KiB pages of u64 words

/// Pages below this page number use the flat table (direct index); the range
/// covers [0, 1.25 GiB), comfortably containing [`HEAP_BASE`] plus every
/// workload's bump-allocated footprint. Higher pages use the spill map.
const DENSE_PAGES: u64 = 0x5_0000;

/// Sentinel in the flat table meaning "page not mapped".
const NO_SLOT: u32 = u32::MAX;

/// Reference-counted copy-on-write page. Cloning a [`MemImage`] (one per
/// simulated run: `Workload::instantiate`) bumps a refcount per page instead
/// of copying the whole footprint; a run then pays one 4 KiB copy per page it
/// actually dirties ([`Arc::make_mut`] on first write). Checkpoint journaling
/// rides the same mechanism: saving a pre-write page is an `Arc` clone.
type Page = Arc<[u64; PAGE_WORDS]>;

/// A fresh zeroed page.
fn zero_page() -> Page {
    Arc::new([0; PAGE_WORDS])
}

/// FxHash-style hasher for the spill map: a single multiply-rotate per
/// `u64` write instead of SipHash's full permutation. Not DoS-resistant,
/// which is fine for simulator-internal page numbers.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A sparse, page-backed flat memory holding the *functional* data of a
/// workload (the caches in this crate model timing only).
///
/// Unmapped reads return 0 so transient/runahead accesses are always safe.
/// A bump allocator hands out disjoint regions for workload data structures.
///
/// # Examples
///
/// ```
/// use svr_mem::MemImage;
/// use svr_isa::DataMemory;
///
/// let mut img = MemImage::new();
/// let a = img.alloc_array(&[1, 2, 3]);
/// assert_eq!(img.read_u64(a + 8), 2);
/// img.write_u64(a + 8, 99);
/// assert_eq!(img.read_u64(a + 8), 99);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    /// Page storage, in mapping order; never shrinks, so slots are stable.
    pages: Vec<Page>,
    /// Flat page table for dense pages: page number → slot + sentinel.
    /// Grown lazily to the highest mapped dense page.
    table: Vec<u32>,
    /// Two-entry last-page cache: `[(page_number, slot); 2]`, most recent
    /// first. Repeated accesses to the same page (streaming and line-local
    /// accesses) skip the table lookup entirely; the second entry keeps a
    /// sequential stream hitting when it is interleaved with a scattered one
    /// (e.g. a stride-indirect gather, which thrashes a one-entry cache).
    last: Cell<[(u64, u32); 2]>,
    /// Pages at or above [`DENSE_PAGES`] (rare: absolute-address tests).
    spill: HashMap<u64, Page, FxBuildHasher>,
    brk: u64,
    /// Copy-on-first-write checkpoint journal (warp-mode checkpointing).
    /// `None` on the detailed hot path, so tracking costs one predictable
    /// branch per write.
    track: Option<TrackState>,
}

/// Active checkpoint journal: the pre-write contents of every page dirtied
/// since [`MemImage::begin_tracking`] (`None` = page was unmapped).
#[derive(Debug, Clone, Default)]
struct TrackState {
    saved: HashMap<u64, Option<Page>, FxBuildHasher>,
    brk: u64,
}

/// Dirty-page delta of a [`MemImage`] between [`MemImage::begin_tracking`]
/// and [`MemImage::take_delta`]: enough to roll the image back to the
/// checkpoint with [`MemImage::restore`]. Deltas are cheap when the run
/// segment touched few pages — cost is proportional to pages dirtied, not to
/// image size.
#[derive(Debug, Clone)]
pub struct MemDelta {
    /// `(page, pre-write contents)` sorted by page; `None` = unmapped at
    /// checkpoint time.
    saved: Vec<(u64, Option<Page>)>,
    brk: u64,
}

impl MemDelta {
    /// Number of pages dirtied since the checkpoint.
    pub fn dirty_pages(&self) -> usize {
        self.saved.len()
    }
}

/// Base of the bump-allocated heap.
const HEAP_BASE: u64 = 0x1000_0000;

impl MemImage {
    /// Creates an empty image; allocation starts at a fixed heap base.
    pub fn new() -> Self {
        MemImage {
            pages: Vec::new(),
            table: Vec::new(),
            last: Cell::new([(u64::MAX, NO_SLOT); 2]),
            spill: HashMap::default(),
            brk: HEAP_BASE,
            track: None,
        }
    }

    /// Starts (or restarts) checkpoint tracking: subsequent writes journal
    /// each page's pre-write contents on first touch. Capture the matching
    /// delta with [`MemImage::take_delta`].
    pub fn begin_tracking(&mut self) {
        self.track = Some(TrackState {
            saved: HashMap::default(),
            brk: self.brk,
        });
    }

    /// Whether checkpoint tracking is active.
    pub fn tracking(&self) -> bool {
        self.track.is_some()
    }

    /// Stops tracking and returns the dirty-page delta accumulated since
    /// [`MemImage::begin_tracking`], or `None` when tracking was never
    /// started.
    pub fn take_delta(&mut self) -> Option<MemDelta> {
        let tr = self.track.take()?;
        let mut saved: Vec<(u64, Option<Page>)> = tr.saved.into_iter().collect();
        saved.sort_unstable_by_key(|&(page, _)| page);
        Some(MemDelta {
            saved,
            brk: tr.brk,
        })
    }

    /// Rolls the image back to the checkpoint captured in `delta`: every
    /// dirtied page gets its pre-write contents back, and the bump allocator
    /// is rewound. Pages first mapped after the checkpoint are zeroed in
    /// place (dense) or unmapped (spill) — reads of a zeroed mapped page are
    /// indistinguishable from an unmapped one, so the restored image is
    /// read-identical to the checkpoint state.
    pub fn restore(&mut self, delta: &MemDelta) {
        for (page, prev) in &delta.saved {
            let page = *page;
            if page < DENSE_PAGES {
                let slot = self.dense_slot(page);
                if slot == NO_SLOT {
                    // A tracked write always maps the page first, so the
                    // slot exists; tolerate absence for robustness.
                    continue;
                }
                match prev {
                    Some(p) => self.pages[slot as usize] = Arc::clone(p),
                    None => self.pages[slot as usize] = zero_page(),
                }
            } else {
                match prev {
                    Some(p) => {
                        self.spill.insert(page, p.clone());
                    }
                    None => {
                        self.spill.remove(&page);
                    }
                }
            }
        }
        self.brk = delta.brk;
        // Drop the last-page cache: it must never outlive a rollback. Today
        // it stores `(page, slot)` pairs and dense slots are stable across
        // `restore`, but that is an implementation accident — anything that
        // remaps a page (spill removal above, or a future compaction) would
        // leave a hit on stale storage, a bug no read would ever report.
        self.last.set([(u64::MAX, NO_SLOT); 2]);
    }

    /// Order-independent hash of the image's readable contents: every
    /// nonzero word, keyed by address, in canonical (ascending page, word)
    /// order. Zero-filled mapped pages hash identically to unmapped ones, so
    /// two images that answer every `read_u64` the same way hash the same —
    /// the equality notion warp-vs-detailed equivalence tests need.
    pub fn content_hash(&self) -> u64 {
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h = (h ^ x).wrapping_mul(FNV_PRIME);
        };
        for (page, &slot) in self.table.iter().enumerate() {
            if slot == NO_SLOT {
                continue;
            }
            for (w, &v) in self.pages[slot as usize].iter().enumerate() {
                if v != 0 {
                    mix(page as u64);
                    mix(w as u64);
                    mix(v);
                }
            }
        }
        let mut spill_pages: Vec<u64> = self.spill.keys().copied().collect();
        spill_pages.sort_unstable();
        for page in spill_pages {
            for (w, &v) in self.spill[&page].iter().enumerate() {
                if v != 0 {
                    mix(page);
                    mix(w as u64);
                    mix(v);
                }
            }
        }
        h
    }

    /// Journals `page`'s pre-write contents on its first tracked write.
    #[cold]
    fn note_write(&mut self, page: u64) {
        let already = self
            .track
            .as_ref()
            .is_some_and(|t| t.saved.contains_key(&page));
        if already {
            return;
        }
        let prev: Option<Page> = if page < DENSE_PAGES {
            let slot = self.dense_slot(page);
            if slot == NO_SLOT {
                None
            } else {
                // Arc clone: the journal shares the pre-write page; the
                // write below copies it via `make_mut`.
                Some(Arc::clone(&self.pages[slot as usize]))
            }
        } else {
            self.spill.get(&page).map(Arc::clone)
        };
        if let Some(tr) = self.track.as_mut() {
            tr.saved.insert(page, prev);
        }
    }

    /// Allocates `n` 64-bit words, 64-byte aligned; returns the base address.
    /// The region is zero-initialized (by virtue of sparseness).
    pub fn alloc_words(&mut self, n: u64) -> u64 {
        let base = self.brk;
        self.brk += n * 8;
        // Keep allocations line-aligned so arrays do not share cache lines.
        self.brk = (self.brk + 63) & !63;
        base
    }

    /// Allocates and initializes an array of words; returns the base address.
    pub fn alloc_array(&mut self, words: &[u64]) -> u64 {
        let base = self.alloc_words(words.len() as u64);
        for (i, &w) in words.iter().enumerate() {
            self.write_u64(base + 8 * i as u64, w);
        }
        base
    }

    /// Total bytes currently allocated by the bump allocator.
    pub fn allocated_bytes(&self) -> u64 {
        self.brk - HEAP_BASE
    }

    /// Number of distinct mapped 4 KiB pages (touched by writes).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len() + self.spill.len()
    }

    /// Looks up the slot of a dense page, consulting the last-page cache.
    #[inline]
    fn dense_slot(&self, page: u64) -> u32 {
        let [e0, e1] = self.last.get();
        if e0.0 == page {
            return e0.1;
        }
        if e1.0 == page {
            self.last.set([e1, e0]);
            return e1.1;
        }
        let slot = match self.table.get(page as usize) {
            Some(&s) => s,
            None => NO_SLOT,
        };
        if slot != NO_SLOT {
            self.last.set([(page, slot), e0]);
        }
        slot
    }
}

impl DataMemory for MemImage {
    #[inline]
    fn read_u64(&self, addr: u64) -> u64 {
        let page = addr >> 12;
        let word = ((addr >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
        if page < DENSE_PAGES {
            let slot = self.dense_slot(page);
            if slot == NO_SLOT {
                return 0;
            }
            return self.pages[slot as usize][word];
        }
        match self.spill.get(&page) {
            Some(p) => p[word],
            None => 0,
        }
    }

    fn write_u64(&mut self, addr: u64, value: u64) {
        let page = addr >> 12;
        let word = ((addr >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
        if self.track.is_some() {
            self.note_write(page);
        }
        if page < DENSE_PAGES {
            let mut slot = self.dense_slot(page);
            if slot == NO_SLOT {
                if self.table.len() <= page as usize {
                    self.table.resize(page as usize + 1, NO_SLOT);
                }
                slot = self.pages.len() as u32;
                self.pages.push(zero_page());
                self.table[page as usize] = slot;
                self.last.set([(page, slot), self.last.get()[0]]);
            }
            Arc::make_mut(&mut self.pages[slot as usize])[word] = value;
            return;
        }
        Arc::make_mut(self.spill.entry(page).or_insert_with(zero_page))[word] = value;
    }

    /// Page-aware bulk read: resolves each page once and memcpys whole runs
    /// instead of taking the per-word lookup path. Result is identical to
    /// the trait's default word-by-word loop.
    fn read_block(&self, addr: u64, out: &mut [u64]) {
        let mut i = 0usize;
        while i < out.len() {
            let a = addr.wrapping_add(8 * i as u64);
            let page = a >> 12;
            let word = ((a >> 3) & (PAGE_WORDS as u64 - 1)) as usize;
            let run = (PAGE_WORDS - word).min(out.len() - i);
            let src: Option<&Page> = if page < DENSE_PAGES {
                let slot = self.dense_slot(page);
                if slot == NO_SLOT {
                    None
                } else {
                    Some(&self.pages[slot as usize])
                }
            } else {
                self.spill.get(&page)
            };
            match src {
                Some(p) => out[i..i + run].copy_from_slice(&p[word..word + run]),
                None => out[i..i + run].fill(0),
            }
            i += run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero() {
        let img = MemImage::new();
        assert_eq!(img.read_u64(0xdead_beef_000), 0);
        assert_eq!(img.read_u64(0x10), 0);
    }

    #[test]
    fn write_read_round_trip_across_pages() {
        let mut img = MemImage::new();
        for i in 0..2000u64 {
            img.write_u64(i * 8, i * 3);
        }
        for i in 0..2000u64 {
            assert_eq!(img.read_u64(i * 8), i * 3);
        }
        assert!(img.mapped_pages() >= 3);
    }

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut img = MemImage::new();
        let a = img.alloc_words(5);
        let b = img.alloc_words(1);
        assert!(b >= a + 5 * 8);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(img.allocated_bytes() >= 6 * 8);
    }

    #[test]
    fn alloc_array_initializes() {
        let mut img = MemImage::new();
        let a = img.alloc_array(&[7, 8, 9]);
        assert_eq!(img.read_u64(a), 7);
        assert_eq!(img.read_u64(a + 16), 9);
    }

    #[test]
    fn misaligned_addr_maps_to_containing_word() {
        let mut img = MemImage::new();
        img.write_u64(64, 42);
        // Address within the same word reads the same storage.
        assert_eq!(img.read_u64(64), 42);
    }

    #[test]
    fn spill_pages_round_trip() {
        // Addresses above the dense range exercise the FxHash spill map.
        let mut img = MemImage::new();
        let high = DENSE_PAGES << 12;
        img.write_u64(high, 11);
        img.write_u64(high + 0x1_0000_0000, 22);
        assert_eq!(img.read_u64(high), 11);
        assert_eq!(img.read_u64(high + 0x1_0000_0000), 22);
        assert_eq!(img.read_u64(high + 8), 0);
        assert_eq!(img.mapped_pages(), 2);
    }

    #[test]
    fn dense_spill_boundary_is_consistent() {
        let mut img = MemImage::new();
        let last_dense = (DENSE_PAGES << 12) - 8;
        let first_spill = DENSE_PAGES << 12;
        img.write_u64(last_dense, 1);
        img.write_u64(first_spill, 2);
        assert_eq!(img.read_u64(last_dense), 1);
        assert_eq!(img.read_u64(first_spill), 2);
    }

    #[test]
    fn interleaved_pages_keep_last_page_cache_coherent() {
        // Alternate between two pages so the one-entry cache thrashes; every
        // read must still see the latest write.
        let mut img = MemImage::new();
        let (a, b) = (HEAP_BASE, HEAP_BASE + 0x10_0000);
        for i in 0..100u64 {
            img.write_u64(a, i);
            img.write_u64(b, i * 2);
            assert_eq!(img.read_u64(a), i);
            assert_eq!(img.read_u64(b), i * 2);
        }
        assert_eq!(img.mapped_pages(), 2);
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let mut img = MemImage::new();
        let a = img.alloc_array(&[1, 2, 3, 4]);
        let before = img.content_hash();
        let before_brk = img.allocated_bytes();

        img.begin_tracking();
        img.write_u64(a, 99); // dirty an existing page
        let b = img.alloc_words(PAGE_WORDS as u64 * 2); // map new pages
        img.write_u64(b, 7);
        img.write_u64(b + 4096, 8);
        let high = (DENSE_PAGES + 5) << 12; // dirty the spill map too
        img.write_u64(high, 55);
        let delta = img.take_delta().expect("tracking was active");
        assert!(delta.dirty_pages() >= 3);
        assert_ne!(img.content_hash(), before);

        img.restore(&delta);
        assert_eq!(img.content_hash(), before);
        assert_eq!(img.allocated_bytes(), before_brk);
        assert_eq!(img.read_u64(a), 1);
        assert_eq!(img.read_u64(b), 0);
        assert_eq!(img.read_u64(high), 0);
        assert!(!img.tracking());
    }

    #[test]
    fn restore_is_repeatable_from_same_delta() {
        let mut img = MemImage::new();
        let a = img.alloc_array(&[10, 20]);
        let before = img.content_hash();
        img.begin_tracking();
        img.write_u64(a, 1);
        let delta = img.take_delta().unwrap();
        img.restore(&delta);
        // Re-dirty and roll back again with the same delta.
        img.write_u64(a, 2);
        img.restore(&delta);
        assert_eq!(img.content_hash(), before);
        assert_eq!(img.read_u64(a), 10);
    }

    #[test]
    fn restore_invalidates_last_page_cache() {
        // Prime the two-entry cache on a page, roll back across a restore,
        // then read through the same page again: the read must go back
        // through the table and see the restored contents, never a cached
        // pre-restore resolution.
        let mut img = MemImage::new();
        let a = img.alloc_array(&[1, 2]);
        let b = a + 0x10_0000; // second page, fills the other cache entry
        img.write_u64(b, 3);
        img.begin_tracking();
        img.write_u64(a, 77);
        img.write_u64(b, 88);
        let delta = img.take_delta().unwrap();
        // Both cache entries now point at the dirtied pages.
        assert_eq!(img.read_u64(a), 77);
        assert_eq!(img.read_u64(b), 88);
        img.restore(&delta);
        assert_eq!(img.last.get(), [(u64::MAX, NO_SLOT); 2], "cache dropped");
        assert_eq!(img.read_u64(a), 1, "read-through sees restored page");
        assert_eq!(img.read_u64(b), 3);
    }

    #[test]
    fn take_delta_without_tracking_is_none() {
        let mut img = MemImage::new();
        assert!(img.take_delta().is_none());
    }

    #[test]
    fn content_hash_ignores_zero_filled_pages() {
        let mut a = MemImage::new();
        let mut b = MemImage::new();
        a.write_u64(HEAP_BASE, 42);
        b.write_u64(HEAP_BASE, 42);
        // Map an extra page in `b` but leave it all-zero: reads cannot tell
        // the images apart, so the hashes must match.
        b.write_u64(HEAP_BASE + 0x10_0000, 0);
        assert_eq!(a.content_hash(), b.content_hash());
        b.write_u64(HEAP_BASE + 0x10_0000, 1);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn read_block_matches_word_loop() {
        let mut img = MemImage::new();
        let base = img.alloc_words(PAGE_WORDS as u64 + 100);
        for i in 0..PAGE_WORDS as u64 + 100 {
            if i % 3 != 0 {
                img.write_u64(base + 8 * i, i * 7);
            }
        }
        // Span two pages plus trailing unmapped space.
        let start = base + 8 * 100;
        let mut bulk = vec![0u64; PAGE_WORDS + 200];
        img.read_block(start, &mut bulk);
        for (i, &v) in bulk.iter().enumerate() {
            assert_eq!(v, img.read_u64(start + 8 * i as u64), "word {i}");
        }
        // Spill-range block reads agree with the default impl too.
        let high = (DENSE_PAGES + 1) << 12;
        img.write_u64(high + 24, 9);
        let mut spill = [0u64; 8];
        img.read_block(high, &mut spill);
        assert_eq!(spill, [0, 0, 0, 9, 0, 0, 0, 0]);
    }

    #[test]
    fn clone_is_independent() {
        let mut img = MemImage::new();
        img.write_u64(HEAP_BASE, 5);
        let snap = img.clone();
        img.write_u64(HEAP_BASE, 9);
        assert_eq!(snap.read_u64(HEAP_BASE), 5);
        assert_eq!(img.read_u64(HEAP_BASE), 9);
    }
}
