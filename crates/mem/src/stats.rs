//! Memory-system statistics: hit/miss counts, DRAM traffic by origin, and
//! prefetch accuracy bookkeeping (used for Fig. 13 of the paper).

use crate::cache::PfSource;

/// Per-prefetch-source efficacy counters, in the conventional
/// accuracy / timeliness / pollution taxonomy (IMP [Yu+ MICRO'15]).
///
/// `issued` counts prefetched lines actually *installed* in the hierarchy
/// (in-cache, coalesced, and structurally dropped prefetches never enter the
/// ledger), so after [`crate::MemoryHierarchy::finalize`] every issued line
/// has exactly one terminal outcome:
///
/// ```text
/// issued == used + late + evicted_unused + resident_at_end
/// ```
///
/// `pollution` sits outside that ledger: it charges *demand misses* to the
/// prefetch whose fill evicted the victim line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfCounters {
    /// Prefetched lines installed in the hierarchy.
    pub issued: u64,
    /// Prefetched lines demand-touched after the fill completed ("useful",
    /// full latency hidden).
    pub used: u64,
    /// Prefetched lines whose first demand touch arrived while the fill was
    /// still in flight — the prefetch helped, but hid only part of the
    /// latency.
    pub late: u64,
    /// Prefetched lines evicted from the LLC without a demand touch.
    pub evicted_unused: u64,
    /// Prefetched lines still resident, never demanded, at run end
    /// (populated by the finalize step).
    pub resident_at_end: u64,
    /// Demand misses on lines evicted by this source's prefetch fills.
    pub pollution: u64,
}

impl PfCounters {
    /// `(used + late) / (used + late + evicted_unused)`, or `None` before
    /// any terminal outcome. Late prefetches were still wanted by the
    /// program, so they count toward accuracy; lines merely resident at run
    /// end never got a verdict and are excluded.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.used + self.late + self.evicted_unused;
        if total == 0 {
            None
        } else {
            Some((self.used + self.late) as f64 / total as f64)
        }
    }

    /// Fraction of *useful* prefetches that were late —
    /// `late / (used + late)`, or `None` before any useful outcome.
    pub fn late_ratio(&self) -> Option<f64> {
        let useful = self.used + self.late;
        if useful == 0 {
            None
        } else {
            Some(self.late as f64 / useful as f64)
        }
    }

    /// Whether the terminal outcomes balance against `issued` (valid only
    /// after the finalize step has populated `resident_at_end`).
    pub fn outcomes_balance(&self) -> bool {
        self.issued == self.used + self.late + self.evicted_unused + self.resident_at_end
    }
}

/// Aggregate statistics for one [`crate::MemoryHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand L1-D hits.
    pub l1d_hits: u64,
    /// Demand L1-D misses.
    pub l1d_misses: u64,
    /// Demand accesses that hit in L2.
    pub l2_hits: u64,
    /// Demand accesses that missed L2 (went to DRAM).
    pub l2_misses: u64,
    /// Instruction-fetch L1-I hits.
    pub l1i_hits: u64,
    /// Instruction-fetch L1-I misses.
    pub l1i_misses: u64,
    /// DRAM line reads triggered by demand data accesses.
    pub dram_demand_data: u64,
    /// DRAM line reads triggered by instruction fetches.
    pub dram_inst: u64,
    /// DRAM line reads triggered by the stride prefetcher.
    pub dram_stride_pf: u64,
    /// DRAM line reads triggered by IMP.
    pub dram_imp_pf: u64,
    /// DRAM line reads triggered by SVR transient loads.
    pub dram_svr_pf: u64,
    /// Dirty-line writebacks to DRAM.
    pub writebacks: u64,
    /// Stride-prefetcher accuracy counters.
    pub stride: PfCounters,
    /// IMP accuracy counters.
    pub imp: PfCounters,
    /// SVR accuracy counters.
    pub svr: PfCounters,
    /// TLB walks performed (data- and instruction-side; mirrors the
    /// per-PC `TlbWalk` trace events exactly).
    pub tlb_walks: u64,
}

impl MemStats {
    /// Mutable counters for one prefetch source.
    pub fn pf_mut(&mut self, src: PfSource) -> &mut PfCounters {
        match src {
            PfSource::Stride => &mut self.stride,
            PfSource::Imp => &mut self.imp,
            PfSource::Svr => &mut self.svr,
        }
    }

    /// Counters for one prefetch source.
    pub fn pf(&self, src: PfSource) -> &PfCounters {
        match src {
            PfSource::Stride => &self.stride,
            PfSource::Imp => &self.imp,
            PfSource::Svr => &self.svr,
        }
    }

    /// Total DRAM line reads (all origins).
    pub fn dram_reads(&self) -> u64 {
        self.dram_demand_data
            + self.dram_inst
            + self.dram_stride_pf
            + self.dram_imp_pf
            + self.dram_svr_pf
    }

    /// Demand L1-D miss ratio.
    pub fn l1d_miss_ratio(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_none_without_outcomes() {
        assert_eq!(PfCounters::default().accuracy(), None);
    }

    #[test]
    fn accuracy_ratio_counts_late_as_useful() {
        let c = PfCounters {
            issued: 10,
            used: 3,
            late: 1,
            evicted_unused: 1,
            resident_at_end: 5,
            pollution: 2,
        };
        assert_eq!(c.accuracy(), Some(0.8));
        assert_eq!(c.late_ratio(), Some(0.25));
        assert!(c.outcomes_balance());
        assert!(!PfCounters {
            issued: 2,
            ..PfCounters::default()
        }
        .outcomes_balance());
        assert_eq!(PfCounters::default().late_ratio(), None);
    }

    #[test]
    fn pf_mut_routes_by_source() {
        let mut s = MemStats::default();
        s.pf_mut(PfSource::Svr).used += 2;
        s.pf_mut(PfSource::Imp).issued += 1;
        assert_eq!(s.svr.used, 2);
        assert_eq!(s.imp.issued, 1);
        assert_eq!(s.pf(PfSource::Svr).used, 2);
        assert_eq!(s.stride, PfCounters::default());
    }

    #[test]
    fn dram_reads_sums_origins() {
        let s = MemStats {
            dram_demand_data: 1,
            dram_inst: 2,
            dram_stride_pf: 3,
            dram_imp_pf: 4,
            dram_svr_pf: 5,
            ..MemStats::default()
        };
        assert_eq!(s.dram_reads(), 15);
    }

    #[test]
    fn miss_ratio() {
        let s = MemStats {
            l1d_hits: 3,
            l1d_misses: 1,
            ..MemStats::default()
        };
        assert!((s.l1d_miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(MemStats::default().l1d_miss_ratio(), 0.0);
    }
}
