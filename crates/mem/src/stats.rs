//! Memory-system statistics: hit/miss counts, DRAM traffic by origin, and
//! prefetch accuracy bookkeeping (used for Fig. 13 of the paper).

use crate::cache::PfSource;

/// Per-prefetch-source counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfCounters {
    /// Prefetches issued to the hierarchy (after in-cache drops).
    pub issued: u64,
    /// Prefetched lines demand-touched before eviction ("useful").
    pub used: u64,
    /// Prefetched lines evicted without a demand touch.
    pub evicted_unused: u64,
}

impl PfCounters {
    /// `used / (used + evicted_unused)`, or `None` before any outcome.
    pub fn accuracy(&self) -> Option<f64> {
        let total = self.used + self.evicted_unused;
        if total == 0 {
            None
        } else {
            Some(self.used as f64 / total as f64)
        }
    }
}

/// Aggregate statistics for one [`crate::MemoryHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand L1-D hits.
    pub l1d_hits: u64,
    /// Demand L1-D misses.
    pub l1d_misses: u64,
    /// Demand accesses that hit in L2.
    pub l2_hits: u64,
    /// Demand accesses that missed L2 (went to DRAM).
    pub l2_misses: u64,
    /// Instruction-fetch L1-I hits.
    pub l1i_hits: u64,
    /// Instruction-fetch L1-I misses.
    pub l1i_misses: u64,
    /// DRAM line reads triggered by demand data accesses.
    pub dram_demand_data: u64,
    /// DRAM line reads triggered by instruction fetches.
    pub dram_inst: u64,
    /// DRAM line reads triggered by the stride prefetcher.
    pub dram_stride_pf: u64,
    /// DRAM line reads triggered by IMP.
    pub dram_imp_pf: u64,
    /// DRAM line reads triggered by SVR transient loads.
    pub dram_svr_pf: u64,
    /// Dirty-line writebacks to DRAM.
    pub writebacks: u64,
    /// Stride-prefetcher accuracy counters.
    pub stride: PfCounters,
    /// IMP accuracy counters.
    pub imp: PfCounters,
    /// SVR accuracy counters.
    pub svr: PfCounters,
    /// TLB walks performed.
    pub tlb_walks: u64,
}

impl MemStats {
    /// Mutable counters for one prefetch source.
    pub fn pf_mut(&mut self, src: PfSource) -> &mut PfCounters {
        match src {
            PfSource::Stride => &mut self.stride,
            PfSource::Imp => &mut self.imp,
            PfSource::Svr => &mut self.svr,
        }
    }

    /// Counters for one prefetch source.
    pub fn pf(&self, src: PfSource) -> &PfCounters {
        match src {
            PfSource::Stride => &self.stride,
            PfSource::Imp => &self.imp,
            PfSource::Svr => &self.svr,
        }
    }

    /// Total DRAM line reads (all origins).
    pub fn dram_reads(&self) -> u64 {
        self.dram_demand_data
            + self.dram_inst
            + self.dram_stride_pf
            + self.dram_imp_pf
            + self.dram_svr_pf
    }

    /// Demand L1-D miss ratio.
    pub fn l1d_miss_ratio(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_none_without_outcomes() {
        assert_eq!(PfCounters::default().accuracy(), None);
    }

    #[test]
    fn accuracy_ratio() {
        let c = PfCounters {
            issued: 10,
            used: 3,
            evicted_unused: 1,
        };
        assert_eq!(c.accuracy(), Some(0.75));
    }

    #[test]
    fn pf_mut_routes_by_source() {
        let mut s = MemStats::default();
        s.pf_mut(PfSource::Svr).used += 2;
        s.pf_mut(PfSource::Imp).issued += 1;
        assert_eq!(s.svr.used, 2);
        assert_eq!(s.imp.issued, 1);
        assert_eq!(s.pf(PfSource::Svr).used, 2);
        assert_eq!(s.stride, PfCounters::default());
    }

    #[test]
    fn dram_reads_sums_origins() {
        let s = MemStats {
            dram_demand_data: 1,
            dram_inst: 2,
            dram_stride_pf: 3,
            dram_imp_pf: 4,
            dram_svr_pf: 5,
            ..MemStats::default()
        };
        assert_eq!(s.dram_reads(), 15);
    }

    #[test]
    fn miss_ratio() {
        let s = MemStats {
            l1d_hits: 3,
            l1d_misses: 1,
            ..MemStats::default()
        };
        assert!((s.l1d_miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(MemStats::default().l1d_miss_ratio(), 0.0);
    }
}
