//! Miss-status holding registers with same-line coalescing.

use std::collections::VecDeque;

/// A file of MSHRs tracking outstanding cache misses.
///
/// Each entry records the line address and the cycle the fill completes.
/// A new miss to a line already outstanding *coalesces* (no new entry); when
/// all entries are busy the requester must wait until [`MshrFile::earliest_free`].
///
/// # Examples
///
/// ```
/// use svr_mem::MshrFile;
/// let mut m = MshrFile::new(2);
/// assert!(m.try_alloc(0x40, 100));
/// assert_eq!(m.outstanding(0x40, 10), Some(100)); // coalesce
/// assert!(m.try_alloc(0x80, 120));
/// assert!(!m.try_alloc(0xc0, 130)); // full
/// assert_eq!(m.earliest_free(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: VecDeque<(u64, u64)>, // (line_addr, ready_at)
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Drops entries whose fill completed at or before `now`.
    pub fn retire(&mut self, now: u64) {
        self.entries.retain(|&(_, ready)| ready > now);
    }

    /// If a miss to `line_addr` is already outstanding at `now`, returns its
    /// completion time (the new request coalesces onto it).
    pub fn outstanding(&mut self, line_addr: u64, now: u64) -> Option<u64> {
        self.retire(now);
        self.entries
            .iter()
            .find(|&&(l, _)| l == line_addr)
            .map(|&(_, r)| r)
    }

    /// Tries to allocate an entry completing at `ready_at`; `false` if full.
    /// Call [`MshrFile::retire`] (or [`MshrFile::outstanding`]) first so
    /// finished entries free up.
    pub fn try_alloc(&mut self, line_addr: u64, ready_at: u64) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push_back((line_addr, ready_at));
        true
    }

    /// The earliest cycle at which an entry frees. Only meaningful when full.
    pub fn earliest_free(&self) -> u64 {
        self.entries
            .iter()
            .map(|&(_, r)| r)
            .min()
            .unwrap_or_default()
    }

    /// Number of in-flight misses at `now`.
    pub fn in_flight(&mut self, now: u64) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_frees_entries() {
        let mut m = MshrFile::new(1);
        assert!(m.try_alloc(0x40, 50));
        assert!(!m.try_alloc(0x80, 60));
        m.retire(50);
        assert!(m.try_alloc(0x80, 60));
    }

    #[test]
    fn coalescing_returns_ready_time() {
        let mut m = MshrFile::new(4);
        m.try_alloc(0x40, 99);
        assert_eq!(m.outstanding(0x40, 0), Some(99));
        assert_eq!(m.outstanding(0x80, 0), None);
        // After completion the entry is gone.
        assert_eq!(m.outstanding(0x40, 99), None);
    }

    #[test]
    fn earliest_free_is_min_ready() {
        let mut m = MshrFile::new(2);
        m.try_alloc(0x40, 200);
        m.try_alloc(0x80, 150);
        assert_eq!(m.earliest_free(), 150);
    }

    #[test]
    fn in_flight_counts_live_entries() {
        let mut m = MshrFile::new(8);
        m.try_alloc(0x40, 100);
        m.try_alloc(0x80, 200);
        assert_eq!(m.in_flight(0), 2);
        assert_eq!(m.in_flight(100), 1);
        assert_eq!(m.in_flight(500), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
