//! Miss-status holding registers with same-line coalescing.

/// A file of MSHRs tracking outstanding cache misses.
///
/// Each entry records the line address and the cycle the fill completes.
/// A new miss to a line already outstanding *coalesces* (no new entry); when
/// all entries are busy the requester must wait until [`MshrFile::earliest_free`].
///
/// The file is probed on every cache access, so retirement is O(1) in the
/// common case: `min_ready` caches the earliest completion among live
/// entries, and [`MshrFile::retire`] returns immediately unless some entry
/// can actually have completed.
///
/// # Examples
///
/// ```
/// use svr_mem::MshrFile;
/// let mut m = MshrFile::new(2);
/// assert!(m.try_alloc(0x40, 100));
/// assert_eq!(m.outstanding(0x40, 10), Some(100)); // coalesce
/// assert!(m.try_alloc(0x80, 120));
/// assert!(!m.try_alloc(0xc0, 130)); // full
/// assert_eq!(m.earliest_free(), Some(100));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<(u64, u64)>, // (line_addr, ready_at)
    /// Minimum `ready_at` among live entries; `u64::MAX` when empty.
    min_ready: u64,
}

impl MshrFile {
    /// Creates a file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            min_ready: u64::MAX,
        }
    }

    /// Drops entries whose fill completed at or before `now`.
    pub fn retire(&mut self, now: u64) {
        if self.min_ready > now {
            return; // nothing can have completed — the common case
        }
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.entries.len() {
            let ready = self.entries[i].1;
            if ready <= now {
                self.entries.swap_remove(i);
            } else {
                min = min.min(ready);
                i += 1;
            }
        }
        self.min_ready = min;
    }

    /// If a miss to `line_addr` is already outstanding at `now`, returns its
    /// completion time (the new request coalesces onto it).
    pub fn outstanding(&mut self, line_addr: u64, now: u64) -> Option<u64> {
        self.retire(now);
        self.entries
            .iter()
            .find(|&&(l, _)| l == line_addr)
            .map(|&(_, r)| r)
    }

    /// Tries to allocate an entry completing at `ready_at`; `false` if full.
    /// Call [`MshrFile::retire`] (or [`MshrFile::outstanding`]) first so
    /// finished entries free up.
    pub fn try_alloc(&mut self, line_addr: u64, ready_at: u64) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push((line_addr, ready_at));
        self.min_ready = self.min_ready.min(ready_at);
        true
    }

    /// The earliest cycle at which an entry frees, or `None` when the file
    /// is empty. A full-file waiter must never be told "retry at cycle 0",
    /// so emptiness is explicit rather than a `0` default.
    pub fn earliest_free(&self) -> Option<u64> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.min_ready)
        }
    }

    /// Number of in-flight misses at `now`.
    pub fn in_flight(&mut self, now: u64) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Verifies internal consistency: the file must never exceed its
    /// capacity, and the cached `min_ready` watermark must sit at or below
    /// every live entry's completion time. A watermark above an entry would
    /// make [`MshrFile::retire`]'s early-out skip that entry forever — a
    /// leaked MSHR that eventually wedges the whole hierarchy.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.entries.len() > self.capacity {
            return Err(format!(
                "MSHR overflow: {} live entries exceed capacity {}",
                self.entries.len(),
                self.capacity
            ));
        }
        for &(line, ready) in &self.entries {
            if ready < self.min_ready {
                return Err(format!(
                    "leaked MSHR: line {line:#x} fills at {ready}, below the \
                     retire watermark {} (retire would never free it)",
                    self.min_ready
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_frees_entries() {
        let mut m = MshrFile::new(1);
        assert!(m.try_alloc(0x40, 50));
        assert!(!m.try_alloc(0x80, 60));
        m.retire(50);
        assert!(m.try_alloc(0x80, 60));
    }

    #[test]
    fn coalescing_returns_ready_time() {
        let mut m = MshrFile::new(4);
        m.try_alloc(0x40, 99);
        assert_eq!(m.outstanding(0x40, 0), Some(99));
        assert_eq!(m.outstanding(0x80, 0), None);
        // After completion the entry is gone.
        assert_eq!(m.outstanding(0x40, 99), None);
    }

    #[test]
    fn earliest_free_is_min_ready() {
        let mut m = MshrFile::new(2);
        m.try_alloc(0x40, 200);
        m.try_alloc(0x80, 150);
        assert_eq!(m.earliest_free(), Some(150));
    }

    #[test]
    fn empty_file_has_no_earliest_free() {
        // Regression: an empty file used to report `0`, telling a waiter to
        // retry at cycle 0 (i.e. in the past) forever.
        let mut m = MshrFile::new(2);
        assert_eq!(m.earliest_free(), None);
        m.try_alloc(0x40, 70);
        m.retire(100);
        assert_eq!(m.earliest_free(), None);
    }

    #[test]
    fn min_ready_tracks_partial_retirement() {
        let mut m = MshrFile::new(4);
        m.try_alloc(0x40, 100);
        m.try_alloc(0x80, 300);
        m.try_alloc(0xc0, 200);
        m.retire(100);
        assert_eq!(m.earliest_free(), Some(200));
        assert_eq!(m.in_flight(100), 2);
        m.retire(250);
        assert_eq!(m.earliest_free(), Some(300));
        m.retire(300);
        assert_eq!(m.earliest_free(), None);
    }

    #[test]
    fn in_flight_counts_live_entries() {
        let mut m = MshrFile::new(8);
        m.try_alloc(0x40, 100);
        m.try_alloc(0x80, 200);
        assert_eq!(m.in_flight(0), 2);
        assert_eq!(m.in_flight(100), 1);
        assert_eq!(m.in_flight(500), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
