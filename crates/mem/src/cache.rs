//! Set-associative cache with LRU replacement and per-line prefetch tags.
//!
//! Prefetch tags implement the accuracy bookkeeping of §IV-A7: every line
//! filled by a prefetch remembers which mechanism brought it in; the first
//! demand access clears the tag ("used"), and evicting a still-tagged line
//! counts as a wasted prefetch.

use crate::{line_of, LINE_BYTES};

/// Which mechanism issued a prefetch (for per-line tags and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PfSource {
    /// The baseline L1 stride prefetcher.
    Stride,
    /// The Indirect Memory Prefetcher baseline.
    Imp,
    /// SVR transient scalar-vector loads.
    Svr,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// L1 data/instruction cache from Table III: 64 KiB, 4-way.
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
        }
    }

    /// L2 cache from Table III: 512 KiB, 8-way.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize / self.ways
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    pf: Option<PfSource>,
    lru: u64,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// If this was the first demand touch of a prefetched line, its source.
    pub first_use_of: Option<PfSource>,
}

/// Information about an evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictInfo {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
    /// If the victim was a never-used prefetch, its source.
    pub pf_unused: Option<PfSource>,
}

/// A set-associative, write-back, write-allocate cache (timing only — data
/// lives in [`crate::MemImage`]).
///
/// # Examples
///
/// ```
/// use svr_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1());
/// assert!(!c.access(0x40, false).hit);
/// c.fill(0x40, false, None);
/// assert!(c.access(0x40, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    ways: usize,
    set_mask: u64,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} not a power of two"
        );
        Cache {
            lines: vec![Line::default(); sets * config.ways],
            ways: config.ways,
            set_mask: sets as u64 - 1,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = line_of(addr) / LINE_BYTES;
        let set = (line & self.set_mask) as usize;
        (set * self.ways, line)
    }

    /// Checks presence without updating replacement state.
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Performs a demand access (load or store). On a hit, updates LRU, sets
    /// the dirty bit for writes, and reports the first use of a prefetched
    /// line. On a miss, state is unchanged (call [`Cache::fill`] afterwards).
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessOutcome {
        self.tick += 1;
        let (base, tag) = self.set_range(addr);
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                l.lru = self.tick;
                l.dirty |= is_write;
                let first_use_of = l.pf.take();
                return AccessOutcome {
                    hit: true,
                    first_use_of,
                };
            }
        }
        AccessOutcome {
            hit: false,
            first_use_of: None,
        }
    }

    /// Touches a line for a *prefetch* hit check: returns `true` (and updates
    /// nothing else) if present. Prefetches that hit are dropped by callers.
    pub fn prefetch_probe(&self, addr: u64) -> bool {
        self.probe(addr)
    }

    /// Inserts a line, evicting the LRU victim if the set is full.
    ///
    /// `pf` tags the line as brought in by a prefetcher; `dirty` marks
    /// store-allocated lines.
    pub fn fill(&mut self, addr: u64, dirty: bool, pf: Option<PfSource>) -> Option<EvictInfo> {
        self.tick += 1;
        let (base, tag) = self.set_range(addr);
        // Already present (e.g. racing fills): refresh tags only.
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                l.dirty |= dirty;
                l.lru = self.tick;
                return None;
            }
        }
        let mut victim = base;
        for i in base..base + self.ways {
            if !self.lines[i].valid {
                victim = i;
                break;
            }
            if self.lines[i].lru < self.lines[victim].lru {
                victim = i;
            }
        }
        let evicted = if self.lines[victim].valid {
            let v = self.lines[victim];
            Some(EvictInfo {
                line_addr: v.tag * LINE_BYTES,
                dirty: v.dirty,
                pf_unused: v.pf,
            })
        } else {
            None
        };
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty,
            pf,
            lru: self.tick,
        };
        evicted
    }

    /// Tags an already-present line as a prefetch from `src` (used when a
    /// tagged line migrates down a level on eviction, so accuracy follows
    /// the paper's eviction-from-LLC definition). Returns `false` when the
    /// line is absent.
    pub fn tag_line(&mut self, addr: u64, src: PfSource) -> bool {
        let (base, tag) = self.set_range(addr);
        for l in &mut self.lines[base..base + self.ways] {
            if l.valid && l.tag == tag {
                l.pf = Some(src);
                return true;
            }
        }
        false
    }

    /// Invalidates every line (used between simulation phases in tests).
    pub fn clear(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert_eq!(c.fill(0x100, false, None), None);
        assert!(c.access(0x100, false).hit);
        assert!(c.probe(0x13f)); // same line
        assert!(!c.probe(0x140)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set stride = 4 lines * 64 = 256 bytes; addresses mapping to set 0:
        let a = 0x000;
        let b = 0x400;
        let d = 0x800;
        c.fill(a, false, None);
        c.fill(b, false, None);
        c.access(a, false); // a more recent than b
        let ev = c.fill(d, false, None).expect("must evict");
        assert_eq!(ev.line_addr, b);
        assert!(c.probe(a) && c.probe(d) && !c.probe(b));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0x000, false, None);
        c.access(0x000, true); // make dirty
        c.fill(0x400, false, None);
        let ev = c.fill(0x800, false, None).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn prefetch_tag_first_use_and_unused_eviction() {
        let mut c = tiny();
        c.fill(0x000, false, Some(PfSource::Svr));
        let out = c.access(0x000, false);
        assert_eq!(out.first_use_of, Some(PfSource::Svr));
        // Second access is no longer a "first use".
        assert_eq!(c.access(0x000, false).first_use_of, None);

        c.fill(0x400, false, Some(PfSource::Imp));
        c.access(0x000, false);
        let ev = c.fill(0x800, false, None).unwrap();
        assert_eq!(ev.pf_unused, Some(PfSource::Imp));
        assert_eq!(ev.line_addr, 0x400);
    }

    #[test]
    fn refill_of_present_line_keeps_one_copy() {
        let mut c = tiny();
        c.fill(0x000, false, None);
        assert_eq!(c.fill(0x000, true, None), None);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.fill(0x000, false, None);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn tag_line_marks_present_lines_only() {
        let mut c = tiny();
        c.fill(0x000, false, None);
        assert!(c.tag_line(0x000, PfSource::Svr));
        assert_eq!(c.access(0x000, false).first_use_of, Some(PfSource::Svr));
        assert!(!c.tag_line(0xf00, PfSource::Svr));
    }

    #[test]
    fn l1_l2_geometry() {
        let l1 = Cache::new(CacheConfig::l1());
        let l2 = Cache::new(CacheConfig::l2());
        assert_eq!(l1.lines.len(), 1024); // 64KiB/64B
        assert_eq!(l2.lines.len(), 8192); // 512KiB/64B
    }
}
