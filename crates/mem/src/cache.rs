//! Set-associative cache with LRU replacement and per-line prefetch tags.
//!
//! Prefetch tags implement the accuracy bookkeeping of §IV-A7: every line
//! filled by a prefetch remembers which mechanism brought it in; the first
//! demand access clears the tag ("used"), and evicting a still-tagged line
//! counts as a wasted prefetch.
//!
//! The tag/LRU/metadata arrays are stored structure-of-arrays so the hit
//! check — the single hottest loop in the simulator — scans only a handful
//! of contiguous `u64` tags per set instead of striding over padded structs.

use crate::{line_of, LINE_BYTES};

/// Which mechanism issued a prefetch (for per-line tags and statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PfSource {
    /// The baseline L1 stride prefetcher.
    Stride,
    /// The Indirect Memory Prefetcher baseline.
    Imp,
    /// SVR transient scalar-vector loads.
    Svr,
}

/// A per-line prefetch tag: which mechanism brought the line in and the
/// guest PC of the load whose training triggered it (so efficacy outcomes
/// can be charged back to the triggering instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PfTag {
    /// The prefetching mechanism.
    pub src: PfSource,
    /// Guest PC of the triggering load.
    pub pc: u64,
}

impl PfTag {
    /// Convenience constructor.
    pub fn new(src: PfSource, pc: u64) -> Self {
        PfTag { src, pc }
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// L1 data/instruction cache from Table III: 64 KiB, 4-way.
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
        }
    }

    /// L2 cache from Table III: 512 KiB, 8-way.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
        }
    }

    fn num_sets(&self) -> usize {
        (self.size_bytes / LINE_BYTES) as usize / self.ways
    }
}

/// Tag value marking an invalid way. Real tags are line numbers
/// (`addr / 64` < 2^58), so the sentinel can never collide.
const INVALID: u64 = u64::MAX;

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// If this was the first demand touch of a prefetched line, its tag.
    pub first_use_of: Option<PfTag>,
}

/// Information about an evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictInfo {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (needs a writeback).
    pub dirty: bool,
    /// If the victim was a never-used prefetch, its tag.
    pub pf_unused: Option<PfTag>,
}

/// Result of a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillOutcome {
    /// The victim evicted to make room, if any.
    pub evicted: Option<EvictInfo>,
    /// If the fill found the line already present carrying a prefetch tag
    /// and this fill is a *demand* fill, the tag: the racing demand fill is
    /// the line's first demand use, and the caller should count it.
    pub first_use_of: Option<PfTag>,
}

/// A set-associative, write-back, write-allocate cache (timing only — data
/// lives in [`crate::MemImage`]).
///
/// # Examples
///
/// ```
/// use svr_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1());
/// assert!(!c.access(0x40, false, true).hit);
/// c.fill(0x40, false, None, true);
/// assert!(c.access(0x40, false, true).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// Per-way line tags (`INVALID` = empty way).
    tags: Vec<u64>,
    /// Per-way last-touch ticks for LRU.
    lru: Vec<u64>,
    /// Per-way dirty bits.
    dirty: Vec<bool>,
    /// Per-way prefetch tags.
    pf: Vec<Option<PfTag>>,
    ways: usize,
    set_mask: u64,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield a power-of-two set count.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.num_sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} not a power of two"
        );
        let lines = sets * config.ways;
        Cache {
            tags: vec![INVALID; lines],
            lru: vec![0; lines],
            dirty: vec![false; lines],
            pf: vec![None; lines],
            ways: config.ways,
            set_mask: sets as u64 - 1,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = line_of(addr) / LINE_BYTES;
        let set = (line & self.set_mask) as usize;
        (set * self.ways, line)
    }

    /// Index of the way holding `tag` within `[base, base+ways)`, if present.
    #[inline]
    fn find(&self, base: usize, tag: u64) -> Option<usize> {
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == tag)
            .map(|w| base + w)
    }

    /// Checks presence without updating replacement state.
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.find(base, tag).is_some()
    }

    /// Performs an access (load or store). On a hit, updates LRU, sets the
    /// dirty bit for writes and — for *demand* accesses only — consumes and
    /// reports a resident prefetch tag (the line's first demand use).
    /// Non-demand accesses (hardware-prefetch lookups) leave tags in place:
    /// a prefetcher touching its own line is not a use, and consuming the
    /// tag there would leak the line out of the efficacy ledger. On a miss,
    /// state is unchanged (call [`Cache::fill`] afterwards).
    pub fn access(&mut self, addr: u64, is_write: bool, demand: bool) -> AccessOutcome {
        self.tick += 1;
        let (base, tag) = self.set_range(addr);
        if let Some(i) = self.find(base, tag) {
            self.lru[i] = self.tick;
            self.dirty[i] |= is_write;
            return AccessOutcome {
                hit: true,
                first_use_of: if demand { self.pf[i].take() } else { None },
            };
        }
        AccessOutcome {
            hit: false,
            first_use_of: None,
        }
    }

    /// Touches a line for a *prefetch* hit check: returns `true` (and updates
    /// nothing else) if present. Prefetches that hit are dropped by callers.
    pub fn prefetch_probe(&self, addr: u64) -> bool {
        self.probe(addr)
    }

    /// Inserts a line, evicting the LRU victim if the set is full.
    ///
    /// `pf` tags the line as brought in by a prefetcher; `dirty` marks
    /// store-allocated lines; `demand` distinguishes demand fills from
    /// writebacks and prefetch installs.
    ///
    /// When the line is already present (racing fills — e.g. a demand fill
    /// completing over an earlier prefetch fill, or a writeback landing on a
    /// resident line), the fill merges instead of duplicating: `dirty` ORs
    /// in, and a racing *demand* fill consumes a resident prefetch tag,
    /// reported via [`FillOutcome::first_use_of`] so prefetch accuracy and
    /// coverage statistics (Fig. 13) count it as used rather than silently
    /// keeping a stale tag. Non-demand racing fills (writebacks, redundant
    /// prefetches) leave an existing tag in place and never plant a new one.
    pub fn fill(&mut self, addr: u64, dirty: bool, pf: Option<PfTag>, demand: bool) -> FillOutcome {
        self.tick += 1;
        let (base, tag) = self.set_range(addr);
        // Already present (racing fills): merge state, never duplicate.
        if let Some(i) = self.find(base, tag) {
            self.dirty[i] |= dirty;
            self.lru[i] = self.tick;
            let first_use_of = if demand { self.pf[i].take() } else { None };
            return FillOutcome {
                evicted: None,
                first_use_of,
            };
        }
        // Victim: first invalid way, else least recently used.
        let mut victim = base;
        for i in base..base + self.ways {
            if self.tags[i] == INVALID {
                victim = i;
                break;
            }
            if self.lru[i] < self.lru[victim] {
                victim = i;
            }
        }
        let evicted = if self.tags[victim] != INVALID {
            Some(EvictInfo {
                line_addr: self.tags[victim] * LINE_BYTES,
                dirty: self.dirty[victim],
                pf_unused: self.pf[victim],
            })
        } else {
            None
        };
        self.tags[victim] = tag;
        self.lru[victim] = self.tick;
        self.dirty[victim] = dirty;
        self.pf[victim] = pf;
        FillOutcome {
            evicted,
            first_use_of: None,
        }
    }

    /// Tags an already-present, untagged line as a prefetch (used when a
    /// tagged line migrates down a level on eviction, so accuracy follows
    /// the paper's eviction-from-LLC definition). Returns `false` — and
    /// leaves the cache untouched — when the line is absent *or* already
    /// carries a tag (overwriting would silently drop the resident tag from
    /// the efficacy ledger; the caller counts the migrating one instead).
    pub fn tag_line(&mut self, addr: u64, tag: PfTag) -> bool {
        let (base, line) = self.set_range(addr);
        if let Some(i) = self.find(base, line) {
            if self.pf[i].is_none() {
                self.pf[i] = Some(tag);
                return true;
            }
        }
        false
    }

    /// Iterates the prefetch tags still resident (never demanded) — the
    /// end-of-run `resident_at_end` population of the efficacy ledger.
    pub fn resident_pf_tags(&self) -> impl Iterator<Item = PfTag> + '_ {
        self.pf.iter().filter_map(|t| *t)
    }

    /// Invalidates every line (used between simulation phases in tests).
    pub fn clear(&mut self) {
        self.tags.fill(INVALID);
        self.lru.fill(0);
        self.dirty.fill(false);
        self.pf.fill(None);
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID).count()
    }

    /// Total line slots (sets × ways).
    pub fn line_slots(&self) -> usize {
        self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
        })
    }

    fn pf(src: PfSource) -> Option<PfTag> {
        Some(PfTag::new(src, 7))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false, true).hit);
        assert_eq!(c.fill(0x100, false, None, true), FillOutcome::default());
        assert!(c.access(0x100, false, true).hit);
        assert!(c.probe(0x13f)); // same line
        assert!(!c.probe(0x140)); // next line
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set stride = 4 lines * 64 = 256 bytes; addresses mapping to set 0:
        let a = 0x000;
        let b = 0x400;
        let d = 0x800;
        c.fill(a, false, None, true);
        c.fill(b, false, None, true);
        c.access(a, false, true); // a more recent than b
        let ev = c.fill(d, false, None, true).evicted.expect("must evict");
        assert_eq!(ev.line_addr, b);
        assert!(c.probe(a) && c.probe(d) && !c.probe(b));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        c.fill(0x000, false, None, true);
        c.access(0x000, true, true); // make dirty
        c.fill(0x400, false, None, true);
        let ev = c.fill(0x800, false, None, true).evicted.unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn prefetch_tag_first_use_and_unused_eviction() {
        let mut c = tiny();
        c.fill(0x000, false, pf(PfSource::Svr), false);
        let out = c.access(0x000, false, true);
        assert_eq!(out.first_use_of, pf(PfSource::Svr));
        // Second access is no longer a "first use".
        assert_eq!(c.access(0x000, false, true).first_use_of, None);

        c.fill(0x400, false, pf(PfSource::Imp), false);
        c.access(0x000, false, true);
        let ev = c.fill(0x800, false, None, true).evicted.unwrap();
        assert_eq!(ev.pf_unused, pf(PfSource::Imp));
        assert_eq!(ev.line_addr, 0x400);
    }

    /// A *non-demand* hit (a prefetcher looking at its own line) must leave
    /// the tag in place — only demand touches consume it.
    #[test]
    fn non_demand_access_leaves_tag_in_place() {
        let mut c = tiny();
        c.fill(0x000, false, pf(PfSource::Svr), false);
        assert_eq!(c.access(0x000, false, false).first_use_of, None);
        assert_eq!(c.access(0x000, false, true).first_use_of, pf(PfSource::Svr));
        assert_eq!(c.resident_pf_tags().count(), 0);
    }

    #[test]
    fn refill_of_present_line_keeps_one_copy() {
        let mut c = tiny();
        c.fill(0x000, false, None, true);
        let out = c.fill(0x000, true, None, true);
        assert_eq!(out.evicted, None);
        assert_eq!(c.occupancy(), 1);
        // The racing fill's dirty bit sticks: the next same-set evictions
        // must report a writeback.
        c.fill(0x400, false, None, true);
        let ev = c.fill(0x800, false, None, true).evicted.unwrap();
        assert!(ev.dirty, "racing fill's dirty bit was dropped");
    }

    /// Regression (Fig. 13 accounting): a demand fill racing with an earlier
    /// prefetch fill of the same line must consume the prefetch tag and
    /// report it as the first demand use — not silently keep the stale tag
    /// (which would later count the prefetch as evicted-unused) and not drop
    /// the new fill's dirty bit.
    #[test]
    fn demand_fill_over_prefetch_fill_consumes_tag() {
        let mut c = tiny();
        c.fill(0x000, false, pf(PfSource::Svr), false);
        let out = c.fill(0x000, true, None, true);
        assert_eq!(out.first_use_of, pf(PfSource::Svr), "tag must be consumed");
        assert_eq!(out.evicted, None);
        // Tag is gone: a later demand access sees no first use...
        assert_eq!(c.access(0x000, false, true).first_use_of, None);
        // ...and eviction does not report the line as an unused prefetch.
        c.fill(0x400, false, None, true);
        let ev = c.fill(0x800, false, None, true).evicted.unwrap();
        assert_eq!(ev.line_addr, 0x000);
        assert_eq!(ev.pf_unused, None);
        assert!(ev.dirty, "racing demand-store fill must keep dirty");
    }

    /// Non-demand racing fills (writebacks, redundant prefetches) leave an
    /// existing tag alone: a writeback of a migrated-tagged line is not a
    /// demand touch.
    #[test]
    fn non_demand_racing_fill_keeps_tag() {
        let mut c = tiny();
        c.fill(0x000, false, pf(PfSource::Imp), false);
        let out = c.fill(0x000, true, None, false); // writeback lands on it
        assert_eq!(out.first_use_of, None);
        // A redundant prefetch fill neither steals nor replants the tag.
        let out = c.fill(0x000, false, pf(PfSource::Svr), false);
        assert_eq!(out.first_use_of, None);
        assert_eq!(c.access(0x000, false, true).first_use_of, pf(PfSource::Imp));
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.fill(0x000, false, None, true);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn tag_line_marks_present_untagged_lines_only() {
        let mut c = tiny();
        c.fill(0x000, false, None, true);
        assert!(c.tag_line(0x000, PfTag::new(PfSource::Svr, 7)));
        assert_eq!(c.resident_pf_tags().count(), 1);
        assert_eq!(c.access(0x000, false, true).first_use_of, pf(PfSource::Svr));
        assert!(!c.tag_line(0xf00, PfTag::new(PfSource::Svr, 7)));
        // A line already carrying a tag refuses a second one: the resident
        // tag stays in the ledger and the migrating one is the caller's to
        // count as wasted.
        c.fill(0x040, false, pf(PfSource::Imp), false);
        assert!(!c.tag_line(0x040, PfTag::new(PfSource::Svr, 9)));
        assert_eq!(c.access(0x040, false, true).first_use_of, pf(PfSource::Imp));
    }

    #[test]
    fn l1_l2_geometry() {
        let l1 = Cache::new(CacheConfig::l1());
        let l2 = Cache::new(CacheConfig::l2());
        assert_eq!(l1.line_slots(), 1024); // 64KiB/64B
        assert_eq!(l2.line_slots(), 8192); // 512KiB/64B
    }
}
