//! TLBs and the page-table-walker pool.
//!
//! Table III: 16-entry fully associative D-TLB and I-TLB, 2048-entry 8-way
//! S-TLB, and 4 page-table walkers. Translation adds latency on top of the
//! cache access path; the walker pool bounds TLB-miss concurrency, which is
//! what Fig. 17's PTW sweep measures.
//!
//! Both levels are stored as flat fixed arrays (pages and LRU ticks in
//! separate vectors, invalid slots marked by a sentinel) so the per-access
//! lookup is a branch-light scan over contiguous `u64`s instead of a
//! pointer-chasing walk over `Vec<Vec<(u64, u64)>>`.

use crate::page_of;

/// TLB geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// First-level TLB entries (fully associative).
    pub l1_entries: usize,
    /// Second-level TLB entries.
    pub l2_entries: usize,
    /// Second-level TLB associativity.
    pub l2_ways: usize,
    /// Extra cycles on an L1-TLB miss that hits the S-TLB.
    pub l2_hit_cycles: u64,
    /// Cycles for a full page-table walk (occupies one walker).
    pub walk_cycles: u64,
    /// Number of page-table walkers.
    pub walkers: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            l1_entries: 16,
            l2_entries: 2048,
            l2_ways: 8,
            l2_hit_cycles: 5,
            // Walks mostly hit cached PTEs (8 PTEs share a line; upper
            // levels are hot), so the average walk is far cheaper than a
            // DRAM access.
            walk_cycles: 30,
            walkers: 4,
        }
    }
}

/// Page value marking an empty slot. Real pages are `addr >> 12` (< 2^52),
/// so the sentinel can never collide.
const EMPTY: u64 = u64::MAX;

/// A two-level TLB (L1 fully associative, shared L2 set-associative).
///
/// # Examples
///
/// ```
/// use svr_mem::{Tlb, TlbConfig, WalkerPool};
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let mut ptw = WalkerPool::new(4);
/// let (lat, walked) = tlb.translate(0, 0x1234_5000, &mut ptw);
/// assert!(walked && lat > 0);
/// let (lat2, walked2) = tlb.translate(lat, 0x1234_5008, &mut ptw);
/// assert_eq!((lat2, walked2), (0, false)); // same page now hits
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// L1 entry pages (`EMPTY` = free slot) and matching LRU ticks.
    l1_pages: Vec<u64>,
    l1_lru: Vec<u64>,
    /// L2 pages/ticks, flattened `sets × ways`.
    l2_pages: Vec<u64>,
    l2_lru: Vec<u64>,
    l2_sets: usize,
    tick: u64,
    hits_l1: u64,
    hits_l2: u64,
    walks: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let sets = (config.l2_entries / config.l2_ways).max(1);
        Tlb {
            l1_pages: vec![EMPTY; config.l1_entries],
            l1_lru: vec![0; config.l1_entries],
            l2_pages: vec![EMPTY; sets * config.l2_ways],
            l2_lru: vec![0; sets * config.l2_ways],
            l2_sets: sets,
            config,
            tick: 0,
            hits_l1: 0,
            hits_l2: 0,
            walks: 0,
        }
    }

    /// Translates `addr` at cycle `now`.
    ///
    /// Returns `(extra_latency, walked)`: the added translation latency and
    /// whether a page-table walk was required (consuming a walker slot from
    /// `ptw`, possibly waiting for one to free).
    pub fn translate(&mut self, now: u64, addr: u64, ptw: &mut WalkerPool) -> (u64, bool) {
        self.tick += 1;
        let page = page_of(addr);
        // L1 lookup.
        if let Some(i) = self.l1_pages.iter().position(|&p| p == page) {
            self.l1_lru[i] = self.tick;
            self.hits_l1 += 1;
            return (0, false);
        }
        // L2 lookup (hashed index to spread page-number patterns).
        let base = stlb_index(page, self.l2_sets) * self.config.l2_ways;
        let ways = self.config.l2_ways;
        let l2_hit = match self.l2_pages[base..base + ways]
            .iter()
            .position(|&p| p == page)
        {
            Some(w) => {
                self.l2_lru[base + w] = self.tick;
                true
            }
            None => false,
        };
        if l2_hit {
            self.hits_l2 += 1;
            self.insert_l1(page);
            return (self.config.l2_hit_cycles, false);
        }
        // Walk.
        self.walks += 1;
        let done = ptw.walk(now, self.config.walk_cycles);
        self.insert_l2(page);
        self.insert_l1(page);
        (done - now, true)
    }

    /// Installs `page` in the L1: first free slot, else the LRU victim
    /// (LRU ticks are unique — one per translate — so there are no ties).
    fn insert_l1(&mut self, page: u64) {
        let victim = Self::victim(&self.l1_pages, &self.l1_lru);
        self.l1_pages[victim] = page;
        self.l1_lru[victim] = self.tick;
    }

    fn insert_l2(&mut self, page: u64) {
        let ways = self.config.l2_ways;
        let base = stlb_index(page, self.l2_sets) * ways;
        let victim = Self::victim(
            &self.l2_pages[base..base + ways],
            &self.l2_lru[base..base + ways],
        );
        self.l2_pages[base + victim] = page;
        self.l2_lru[base + victim] = self.tick;
    }

    /// First empty slot in `pages`, else the index of the minimum LRU tick.
    #[inline]
    fn victim(pages: &[u64], lru: &[u64]) -> usize {
        let mut victim = 0;
        for (i, &p) in pages.iter().enumerate() {
            if p == EMPTY {
                return i;
            }
            if lru[i] < lru[victim] {
                victim = i;
            }
        }
        victim
    }

    /// `(l1_hits, l2_hits, walks)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.walks)
    }
}

/// S-TLB set hash: a Fibonacci-multiply spread so strided page patterns
/// (which alias badly under low-bit indexing) distribute across sets.
fn stlb_index(page: u64, sets: usize) -> usize {
    let h = page.wrapping_mul(0x9E3779B97F4A7C15) >> 17;
    (h as usize) % sets
}

/// A pool of page-table walkers with bounded concurrency.
#[derive(Debug, Clone)]
pub struct WalkerPool {
    free_at: Vec<u64>,
}

impl WalkerPool {
    /// Creates `n` idle walkers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one page-table walker");
        WalkerPool {
            free_at: vec![0; n],
        }
    }

    /// Starts a walk at `now` (or when a walker frees); returns completion.
    pub fn walk(&mut self, now: u64, walk_cycles: u64) -> u64 {
        let slot = self.free_at.iter_mut().min().expect("pool nonempty");
        let start = (*slot).max(now);
        *slot = start + walk_cycles;
        *slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TlbConfig {
        TlbConfig {
            l1_entries: 2,
            l2_entries: 8,
            l2_ways: 2,
            l2_hit_cycles: 5,
            walk_cycles: 100,
            walkers: 2,
        }
    }

    #[test]
    fn first_access_walks_then_hits() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        let (lat, walked) = t.translate(0, 0x1000, &mut p);
        assert!(walked);
        assert_eq!(lat, 100);
        let (lat, walked) = t.translate(100, 0x1fff, &mut p);
        assert!(!walked);
        assert_eq!(lat, 0);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        t.translate(0, 0x1000, &mut p);
        t.translate(0, 0x2000, &mut p);
        t.translate(0, 0x3000, &mut p); // evicts page 1 from 2-entry L1
        let (lat, walked) = t.translate(0, 0x1000, &mut p);
        assert!(!walked, "should hit S-TLB");
        assert_eq!(lat, 5);
        let (_, _, walks) = t.stats();
        assert_eq!(walks, 3);
    }

    /// At capacity, the L1 victim must be the least-recently-used entry —
    /// not the oldest-inserted one.
    #[test]
    fn l1_victim_at_capacity_is_lru() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        t.translate(0, 0x1000, &mut p); // page 1
        t.translate(0, 0x2000, &mut p); // page 2 — L1 now full
        t.translate(0, 0x1000, &mut p); // touch page 1: page 2 is now LRU
        t.translate(0, 0x3000, &mut p); // must evict page 2
        let (h1_before, _, _) = t.stats();
        let (lat, walked) = t.translate(500, 0x1000, &mut p);
        assert_eq!(
            (lat, walked),
            (0, false),
            "page 1 must still be L1-resident"
        );
        let (h1_after, _, _) = t.stats();
        assert_eq!(h1_after, h1_before + 1);
        // Page 2 was evicted to the S-TLB: hits there with L2 latency.
        let (lat, walked) = t.translate(500, 0x2000, &mut p);
        assert_eq!((lat, walked), (5, false));
    }

    /// The S-TLB index hash must spread both sequential and large-stride
    /// page patterns across sets instead of aliasing into a few.
    #[test]
    fn stlb_index_distributes_page_patterns() {
        let sets = 256;
        // Sequential pages.
        let mut counts = vec![0u32; sets];
        for page in 0..4096u64 {
            counts[stlb_index(page, sets)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= 64,
            "sequential pages clump: max {max} of 4096 in one set"
        );
        assert!(
            counts.iter().filter(|&&c| c > 0).count() > sets / 2,
            "sequential pages use too few sets"
        );
        // Power-of-two strided pages (the pattern low-bit indexing aliases).
        let mut counts = vec![0u32; sets];
        for i in 0..4096u64 {
            counts[stlb_index(i * 256, sets)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= 64,
            "strided pages clump: max {max} of 4096 in one set"
        );
        // Results must be in range for a non-power-of-two set count too.
        for page in 0..1000u64 {
            assert!(stlb_index(page, 24) < 24);
        }
    }

    #[test]
    fn walker_pool_limits_concurrency() {
        let mut p = WalkerPool::new(1);
        let a = p.walk(0, 100);
        let b = p.walk(0, 100);
        assert_eq!(a, 100);
        assert_eq!(b, 200); // serialized on a single walker
        let mut p2 = WalkerPool::new(2);
        let a = p2.walk(0, 100);
        let b = p2.walk(0, 100);
        assert_eq!((a, b), (100, 100)); // parallel
    }

    /// When every walker is busy, new walks queue behind the walker that
    /// frees *earliest*, and completions come out in arrival order.
    #[test]
    fn walker_pool_exhaustion_orders_by_earliest_free() {
        let mut p = WalkerPool::new(2);
        let a = p.walk(0, 100); // walker 0 busy until 100
        let b = p.walk(0, 40); // walker 1 busy until 40
        assert_eq!((a, b), (100, 40));
        // Pool exhausted at t=10: the next walk must wait for walker 1
        // (frees at 40), not walker 0 (frees at 100).
        let c = p.walk(10, 50);
        assert_eq!(c, 90);
        // Another: earliest-free is now walker 1 again (at 90).
        let d = p.walk(10, 50);
        assert_eq!(d, 140);
        // Back-to-back exhaustion keeps completions monotone in issue order.
        let e = p.walk(10, 50);
        assert_eq!(e, 150);
        assert!(c < d && d < e);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_walkers_rejected() {
        let _ = WalkerPool::new(0);
    }

    #[test]
    fn stats_counters() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        t.translate(0, 0x1000, &mut p);
        t.translate(0, 0x1000, &mut p);
        let (h1, h2, w) = t.stats();
        assert_eq!((h1, h2, w), (1, 0, 1));
    }
}
