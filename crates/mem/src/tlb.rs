//! TLBs and the page-table-walker pool.
//!
//! Table III: 16-entry fully associative D-TLB and I-TLB, 2048-entry 8-way
//! S-TLB, and 4 page-table walkers. Translation adds latency on top of the
//! cache access path; the walker pool bounds TLB-miss concurrency, which is
//! what Fig. 17's PTW sweep measures.

use crate::page_of;

/// TLB geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// First-level TLB entries (fully associative).
    pub l1_entries: usize,
    /// Second-level TLB entries.
    pub l2_entries: usize,
    /// Second-level TLB associativity.
    pub l2_ways: usize,
    /// Extra cycles on an L1-TLB miss that hits the S-TLB.
    pub l2_hit_cycles: u64,
    /// Cycles for a full page-table walk (occupies one walker).
    pub walk_cycles: u64,
    /// Number of page-table walkers.
    pub walkers: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        TlbConfig {
            l1_entries: 16,
            l2_entries: 2048,
            l2_ways: 8,
            l2_hit_cycles: 5,
            // Walks mostly hit cached PTEs (8 PTEs share a line; upper
            // levels are hot), so the average walk is far cheaper than a
            // DRAM access.
            walk_cycles: 30,
            walkers: 4,
        }
    }
}

/// A two-level TLB (L1 fully associative, shared L2 set-associative).
///
/// # Examples
///
/// ```
/// use svr_mem::{Tlb, TlbConfig, WalkerPool};
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let mut ptw = WalkerPool::new(4);
/// let (lat, walked) = tlb.translate(0, 0x1234_5000, &mut ptw);
/// assert!(walked && lat > 0);
/// let (lat2, walked2) = tlb.translate(lat, 0x1234_5008, &mut ptw);
/// assert_eq!((lat2, walked2), (0, false)); // same page now hits
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    l1: Vec<(u64, u64)>,      // (page, lru)
    l2: Vec<Vec<(u64, u64)>>, // sets of (page, lru)
    tick: u64,
    hits_l1: u64,
    hits_l2: u64,
    walks: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let sets = (config.l2_entries / config.l2_ways).max(1);
        Tlb {
            config,
            l1: Vec::with_capacity(config.l1_entries),
            l2: vec![Vec::with_capacity(config.l2_ways); sets],
            tick: 0,
            hits_l1: 0,
            hits_l2: 0,
            walks: 0,
        }
    }

    /// Translates `addr` at cycle `now`.
    ///
    /// Returns `(extra_latency, walked)`: the added translation latency and
    /// whether a page-table walk was required (consuming a walker slot from
    /// `ptw`, possibly waiting for one to free).
    pub fn translate(&mut self, now: u64, addr: u64, ptw: &mut WalkerPool) -> (u64, bool) {
        self.tick += 1;
        let page = page_of(addr);
        // L1 lookup.
        if let Some(e) = self.l1.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            self.hits_l1 += 1;
            return (0, false);
        }
        // L2 lookup (hashed index to spread page-number patterns).
        let sets = self.l2.len();
        let set = &mut self.l2[stlb_index(page, sets)];
        let l2_hit = if let Some(e) = set.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            true
        } else {
            false
        };
        if l2_hit {
            self.hits_l2 += 1;
            self.insert_l1(page);
            return (self.config.l2_hit_cycles, false);
        }
        // Walk.
        self.walks += 1;
        let done = ptw.walk(now, self.config.walk_cycles);
        self.insert_l2(page);
        self.insert_l1(page);
        (done - now, true)
    }

    fn insert_l1(&mut self, page: u64) {
        if self.l1.len() >= self.config.l1_entries {
            let victim = self
                .l1
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("l1 nonempty");
            self.l1.swap_remove(victim);
        }
        self.l1.push((page, self.tick));
    }

    fn insert_l2(&mut self, page: u64) {
        let ways = self.config.l2_ways;
        let sets = self.l2.len();
        let set = &mut self.l2[stlb_index(page, sets)];
        if set.len() >= ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("set nonempty");
            set.swap_remove(victim);
        }
        set.push((page, self.tick));
    }

    /// `(l1_hits, l2_hits, walks)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits_l1, self.hits_l2, self.walks)
    }
}

fn stlb_index(page: u64, sets: usize) -> usize {
    let h = page.wrapping_mul(0x9E3779B97F4A7C15) >> 17;
    (h as usize) % sets
}

/// A pool of page-table walkers with bounded concurrency.
#[derive(Debug, Clone)]
pub struct WalkerPool {
    free_at: Vec<u64>,
}

impl WalkerPool {
    /// Creates `n` idle walkers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one page-table walker");
        WalkerPool {
            free_at: vec![0; n],
        }
    }

    /// Starts a walk at `now` (or when a walker frees); returns completion.
    pub fn walk(&mut self, now: u64, walk_cycles: u64) -> u64 {
        let slot = self.free_at.iter_mut().min().expect("pool nonempty");
        let start = (*slot).max(now);
        *slot = start + walk_cycles;
        *slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TlbConfig {
        TlbConfig {
            l1_entries: 2,
            l2_entries: 8,
            l2_ways: 2,
            l2_hit_cycles: 5,
            walk_cycles: 100,
            walkers: 2,
        }
    }

    #[test]
    fn first_access_walks_then_hits() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        let (lat, walked) = t.translate(0, 0x1000, &mut p);
        assert!(walked);
        assert_eq!(lat, 100);
        let (lat, walked) = t.translate(100, 0x1fff, &mut p);
        assert!(!walked);
        assert_eq!(lat, 0);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        t.translate(0, 0x1000, &mut p);
        t.translate(0, 0x2000, &mut p);
        t.translate(0, 0x3000, &mut p); // evicts page 1 from 2-entry L1
        let (lat, walked) = t.translate(0, 0x1000, &mut p);
        assert!(!walked, "should hit S-TLB");
        assert_eq!(lat, 5);
        let (_, _, walks) = t.stats();
        assert_eq!(walks, 3);
    }

    #[test]
    fn walker_pool_limits_concurrency() {
        let mut p = WalkerPool::new(1);
        let a = p.walk(0, 100);
        let b = p.walk(0, 100);
        assert_eq!(a, 100);
        assert_eq!(b, 200); // serialized on a single walker
        let mut p2 = WalkerPool::new(2);
        let a = p2.walk(0, 100);
        let b = p2.walk(0, 100);
        assert_eq!((a, b), (100, 100)); // parallel
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_walkers_rejected() {
        let _ = WalkerPool::new(0);
    }

    #[test]
    fn stats_counters() {
        let mut t = Tlb::new(small());
        let mut p = WalkerPool::new(2);
        t.translate(0, 0x1000, &mut p);
        t.translate(0, 0x1000, &mut p);
        let (h1, h2, w) = t.stats();
        assert_eq!((h1, h2, w), (1, 0, 1));
    }
}
