//! DRAM model: fixed access latency plus a bandwidth-limited channel.

use crate::LINE_BYTES;

/// DRAM configuration (Table III: 45 ns latency, 50 GiB/s bandwidth, 2 GHz
/// core clock so 1 ns = 2 cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Core cycles for an unloaded access (45 ns @ 2 GHz = 90 cycles).
    pub latency_cycles: u64,
    /// Channel bandwidth in GiB/s.
    pub bandwidth_gibps: f64,
    /// Core frequency in GHz (to convert bandwidth into cycles/line).
    pub freq_ghz: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency_cycles: 90,
            bandwidth_gibps: 50.0,
            freq_ghz: 2.0,
        }
    }
}

impl DramConfig {
    /// Core cycles of channel occupancy per 64 B line transfer.
    pub fn cycles_per_line(&self) -> f64 {
        let bytes_per_ns = self.bandwidth_gibps * (1u64 << 30) as f64 / 1e9;
        LINE_BYTES as f64 / bytes_per_ns * self.freq_ghz
    }
}

/// A single bandwidth-shared DRAM channel.
///
/// Each line transfer occupies the channel for `cycles_per_line`; a request
/// arriving while the channel is busy queues behind it, and its completion
/// time is `channel_start + latency`. Reads and writes (writebacks) share the
/// channel, which is what makes over-prefetching expensive (§VI-C).
///
/// # Examples
///
/// ```
/// use svr_mem::{DramModel, DramConfig};
/// let mut d = DramModel::new(DramConfig::default());
/// let a = d.access(0, false);
/// let b = d.access(0, false); // queued behind the first transfer
/// assert!(b > a);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    cycles_per_line: f64,
    next_free: f64,
    reads: u64,
    writes: u64,
}

impl DramModel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        DramModel {
            cycles_per_line: config.cycles_per_line(),
            config,
            next_free: 0.0,
            reads: 0,
            writes: 0,
        }
    }

    /// Issues a line transfer at `now`; returns the completion cycle.
    /// `is_write` counts the transfer as writeback traffic.
    pub fn access(&mut self, now: u64, is_write: bool) -> u64 {
        let start = self.next_free.max(now as f64);
        self.next_free = start + self.cycles_per_line;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        (start + self.config.latency_cycles as f64).ceil() as u64
    }

    /// Number of read-line transfers so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write-line transfers so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes moved.
    pub fn traffic_bytes(&self) -> u64 {
        (self.reads + self.writes) * LINE_BYTES
    }

    /// The configuration in effect.
    pub fn config(&self) -> DramConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency() {
        let mut d = DramModel::new(DramConfig::default());
        let t = d.access(100, false);
        assert_eq!(t, 100 + 90);
    }

    #[test]
    fn queueing_under_bandwidth_pressure() {
        let cfg = DramConfig::default();
        let per_line = cfg.cycles_per_line();
        let mut d = DramModel::new(cfg);
        let t0 = d.access(0, false);
        let t1 = d.access(0, false);
        let t2 = d.access(0, false);
        assert!(t1 >= t0);
        assert!((t2 - t0) as f64 >= 2.0 * per_line - 2.0);
    }

    #[test]
    fn idle_channel_does_not_queue() {
        let mut d = DramModel::new(DramConfig::default());
        let t0 = d.access(0, false);
        let t1 = d.access(10_000, false);
        assert_eq!(t1, 10_000 + 90);
        assert!(t0 < t1);
    }

    #[test]
    fn traffic_accounting() {
        let mut d = DramModel::new(DramConfig::default());
        d.access(0, false);
        d.access(0, true);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.traffic_bytes(), 128);
    }

    #[test]
    fn cycles_per_line_scales_with_bandwidth() {
        let slow = DramConfig {
            bandwidth_gibps: 12.5,
            ..DramConfig::default()
        };
        let fast = DramConfig {
            bandwidth_gibps: 100.0,
            ..DramConfig::default()
        };
        assert!((slow.cycles_per_line() / fast.cycles_per_line() - 8.0).abs() < 1e-9);
        // 50 GiB/s @ 2GHz: 64B / 53.687 B/ns * 2 = ~2.38 cycles
        let c = DramConfig::default().cycles_per_line();
        assert!(c > 2.0 && c < 3.0, "{c}");
    }
}
