//! DRAM model: fixed access latency plus a bandwidth-limited channel.
//!
//! Channel occupancy is tracked in **integer fixed-point** sub-cycle units
//! (1 cycle = [`TICKS_PER_CYCLE`] ticks) rather than `f64`. Accumulating
//! millions of fractional line times in floating point drifts (the mantissa
//! runs out of bits once `next_free` reaches billions of cycles), which made
//! billion-cycle bandwidth sweeps (Fig. 18) depend on run length. Integer
//! ticks are associative and drift-free: the completion cycle of the n-th
//! back-to-back transfer is exactly `ceil((n*line_ticks)/1024) + latency`.

use crate::LINE_BYTES;

/// Fixed-point sub-cycle resolution: 1 core cycle = 1024 ticks.
pub const TICKS_PER_CYCLE: u64 = 1 << TICK_SHIFT;
const TICK_SHIFT: u32 = 10;

/// DRAM configuration (Table III: 45 ns latency, 50 GiB/s bandwidth, 2 GHz
/// core clock so 1 ns = 2 cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Core cycles for an unloaded access (45 ns @ 2 GHz = 90 cycles).
    pub latency_cycles: u64,
    /// Channel bandwidth in GiB/s.
    pub bandwidth_gibps: f64,
    /// Core frequency in GHz (to convert bandwidth into cycles/line).
    pub freq_ghz: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            latency_cycles: 90,
            bandwidth_gibps: 50.0,
            freq_ghz: 2.0,
        }
    }
}

impl DramConfig {
    /// Core cycles of channel occupancy per 64 B line transfer.
    pub fn cycles_per_line(&self) -> f64 {
        let bytes_per_ns = self.bandwidth_gibps * (1u64 << 30) as f64 / 1e9;
        LINE_BYTES as f64 / bytes_per_ns * self.freq_ghz
    }

    /// Channel occupancy per line in fixed-point ticks (rounded once, at
    /// configuration time — the only place floating point touches timing).
    pub fn line_ticks(&self) -> u64 {
        let ticks = (self.cycles_per_line() * TICKS_PER_CYCLE as f64).round() as u64;
        ticks.max(1)
    }
}

/// A single bandwidth-shared DRAM channel.
///
/// Each line transfer occupies the channel for [`DramConfig::line_ticks`];
/// a request arriving while the channel is busy queues behind it, and its
/// completion time is `channel_start + latency`. Reads and writes
/// (writebacks) share the channel, which is what makes over-prefetching
/// expensive (§VI-C).
///
/// # Examples
///
/// ```
/// use svr_mem::{DramModel, DramConfig};
/// let mut d = DramModel::new(DramConfig::default());
/// let a = d.access(0, false);
/// let b = d.access(0, false); // queued behind the first transfer
/// assert!(b > a);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    line_ticks: u64,
    /// Tick at which the channel next frees (fixed-point; cycle × 1024).
    next_free_ticks: u64,
    reads: u64,
    writes: u64,
}

impl DramModel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        DramModel {
            line_ticks: config.line_ticks(),
            config,
            next_free_ticks: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Issues a line transfer at `now`; returns the completion cycle.
    /// `is_write` counts the transfer as writeback traffic.
    pub fn access(&mut self, now: u64, is_write: bool) -> u64 {
        let start = self.next_free_ticks.max(now << TICK_SHIFT);
        self.next_free_ticks = start + self.line_ticks;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        // Completion rounds the fractional channel-start up to a whole cycle
        // (the integer analogue of the former `f64::ceil`).
        (start >> TICK_SHIFT)
            + u64::from(start & (TICKS_PER_CYCLE - 1) != 0)
            + self.config.latency_cycles
    }

    /// Number of read-line transfers so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write-line transfers so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes moved.
    pub fn traffic_bytes(&self) -> u64 {
        (self.reads + self.writes) * LINE_BYTES
    }

    /// The configuration in effect.
    pub fn config(&self) -> DramConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency() {
        let mut d = DramModel::new(DramConfig::default());
        let t = d.access(100, false);
        assert_eq!(t, 100 + 90);
    }

    #[test]
    fn queueing_under_bandwidth_pressure() {
        let cfg = DramConfig::default();
        let per_line = cfg.cycles_per_line();
        let mut d = DramModel::new(cfg);
        let t0 = d.access(0, false);
        let t1 = d.access(0, false);
        let t2 = d.access(0, false);
        assert!(t1 >= t0);
        assert!((t2 - t0) as f64 >= 2.0 * per_line - 2.0);
    }

    #[test]
    fn idle_channel_does_not_queue() {
        let mut d = DramModel::new(DramConfig::default());
        let t0 = d.access(0, false);
        let t1 = d.access(10_000, false);
        assert_eq!(t1, 10_000 + 90);
        assert!(t0 < t1);
    }

    #[test]
    fn traffic_accounting() {
        let mut d = DramModel::new(DramConfig::default());
        d.access(0, false);
        d.access(0, true);
        assert_eq!(d.reads(), 1);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.traffic_bytes(), 128);
    }

    #[test]
    fn cycles_per_line_scales_with_bandwidth() {
        let slow = DramConfig {
            bandwidth_gibps: 12.5,
            ..DramConfig::default()
        };
        let fast = DramConfig {
            bandwidth_gibps: 100.0,
            ..DramConfig::default()
        };
        assert!((slow.cycles_per_line() / fast.cycles_per_line() - 8.0).abs() < 1e-9);
        // 50 GiB/s @ 2GHz: 64B / 53.687 B/ns * 2 = ~2.38 cycles
        let c = DramConfig::default().cycles_per_line();
        assert!(c > 2.0 && c < 3.0, "{c}");
        // Fixed-point occupancy rounds that once, to 2441/1024 cycles.
        assert_eq!(DramConfig::default().line_ticks(), 2441);
    }

    /// Regression for the `f64` accumulation drift: after >10M back-to-back
    /// transfers the completion cycle must equal the closed-form integer
    /// expectation *exactly*. Under the old floating-point accumulator the
    /// n-th completion diverged from `ceil(n*line_ticks/1024)` once
    /// `next_free` grew past ~2^26 cycles (the f64 mantissa could no longer
    /// represent the 1/1024-cycle fraction).
    #[test]
    fn ten_million_transfers_are_bit_exact() {
        let cfg = DramConfig::default();
        let ticks = cfg.line_ticks();
        let lat = cfg.latency_cycles;
        let mut d = DramModel::new(cfg);
        let n: u64 = 10_000_001;
        let mut last = 0;
        for _ in 0..n {
            last = d.access(0, false);
        }
        // The n-th transfer starts at (n-1)*ticks and completes at the start
        // rounded up to a whole cycle plus the access latency.
        let start = (n - 1) * ticks;
        let expect = start / TICKS_PER_CYCLE + u64::from(start % TICKS_PER_CYCLE != 0) + lat;
        assert_eq!(last, expect, "drift after {n} transfers");
        assert_eq!(d.reads(), n);
    }

    /// The same closed form holds for a non-dyadic bandwidth point (Fig. 18's
    /// 12.5 GiB/s sweep value), where the per-line time is not representable
    /// in binary floating point after scaling.
    #[test]
    fn drift_free_at_low_bandwidth() {
        let cfg = DramConfig {
            bandwidth_gibps: 12.5,
            ..DramConfig::default()
        };
        let ticks = cfg.line_ticks();
        let mut d = DramModel::new(cfg);
        let n: u64 = 2_000_000;
        let mut last = 0;
        for _ in 0..n {
            last = d.access(0, false);
        }
        let start = (n - 1) * ticks;
        let expect =
            start / TICKS_PER_CYCLE + u64::from(start % TICKS_PER_CYCLE != 0) + cfg.latency_cycles;
        assert_eq!(last, expect);
    }
}
