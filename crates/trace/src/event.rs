//! Typed trace events.
//!
//! Every event carries absolute cycle timestamps (the simulator is
//! cycle-approximate and computes completion times eagerly at issue, so span
//! events know both endpoints the moment they are emitted). The enum is small
//! and `Copy` so that a disabled sink compiles the whole emission path away
//! and an enabled ring sink can buffer events without allocation per event.

/// Stall attribution tag, mirroring `svr_core::StallBucket` without creating
/// a dependency cycle (trace is a leaf crate; core maps its buckets onto
/// these tags at the emission site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallTag {
    /// Baseline issue cycle (one per issued instruction group).
    Base,
    /// Branch misprediction redirect.
    Branch,
    /// Instruction fetch miss.
    Fetch,
    /// Data access satisfied in L1 (hit-under-miss latency included).
    MemL1,
    /// Data access satisfied in L2.
    MemL2,
    /// Data access that went to DRAM.
    MemDram,
    /// Structural hazard (issue-width / scoreboard pressure).
    Structural,
}

impl StallTag {
    /// All tags, in the canonical CPI-stack order.
    pub const ALL: [StallTag; 7] = [
        StallTag::Base,
        StallTag::Branch,
        StallTag::Fetch,
        StallTag::MemL1,
        StallTag::MemL2,
        StallTag::MemDram,
        StallTag::Structural,
    ];

    /// Stable short name used in JSON artifacts and summary tables.
    pub fn name(self) -> &'static str {
        match self {
            StallTag::Base => "base",
            StallTag::Branch => "branch",
            StallTag::Fetch => "fetch",
            StallTag::MemL1 => "mem_l1",
            StallTag::MemL2 => "mem_l2",
            StallTag::MemDram => "mem_dram",
            StallTag::Structural => "structural",
        }
    }

    /// Position in [`StallTag::ALL`]; used to index per-interval arrays.
    pub fn index(self) -> usize {
        match self {
            StallTag::Base => 0,
            StallTag::Branch => 1,
            StallTag::Fetch => 2,
            StallTag::MemL1 => 3,
            StallTag::MemL2 => 4,
            StallTag::MemDram => 5,
            StallTag::Structural => 6,
        }
    }
}

/// Which level of the hierarchy satisfied a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    L1,
    L2,
    Dram,
}

impl MemLevel {
    pub fn name(self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::Dram => "DRAM",
        }
    }
}

/// What kind of access generated a memory event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    DemandLoad,
    DemandStore,
    InstFetch,
    /// Stride-prefetcher generated.
    StridePf,
    /// Indirect-memory-prefetcher generated.
    ImpPf,
    /// SVR runahead chain generated.
    SvrPf,
}

impl MemKind {
    pub fn name(self) -> &'static str {
        match self {
            MemKind::DemandLoad => "load",
            MemKind::DemandStore => "store",
            MemKind::InstFetch => "ifetch",
            MemKind::StridePf => "stride_pf",
            MemKind::ImpPf => "imp_pf",
            MemKind::SvrPf => "svr_pf",
        }
    }

    /// True for prefetches injected by hardware rather than the program.
    pub fn is_prefetch(self) -> bool {
        matches!(self, MemKind::StridePf | MemKind::ImpPf | MemKind::SvrPf)
    }
}

/// The lifecycle outcome of a hardware prefetch, in the conventional
/// accuracy / timeliness / pollution taxonomy (IMP [Yu+ MICRO'15]). Each
/// prefetched line gets exactly one terminal outcome (`Used`, `Late`,
/// `EvictedUnused` or `Resident`); `Issued` marks its birth and `Pollution`
/// charges a *demand* miss to the prefetch that evicted the victim line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PfEvent {
    /// A prefetched line was installed in the cache.
    Issued,
    /// First demand touch found the prefetched line resident: fully timely.
    Used,
    /// First demand touch arrived while the prefetch was still in flight —
    /// latency only partially hidden.
    Late,
    /// The line was evicted from the LLC without ever being demanded.
    EvictedUnused,
    /// A demand miss hit a line that a prefetch fill had evicted.
    Pollution,
    /// Still resident (never demanded) when the run ended.
    Resident,
}

impl PfEvent {
    /// All outcomes, in lifecycle order.
    pub const ALL: [PfEvent; 6] = [
        PfEvent::Issued,
        PfEvent::Used,
        PfEvent::Late,
        PfEvent::EvictedUnused,
        PfEvent::Pollution,
        PfEvent::Resident,
    ];

    /// Stable short name used in JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            PfEvent::Issued => "issued",
            PfEvent::Used => "used",
            PfEvent::Late => "late",
            PfEvent::EvictedUnused => "evicted_unused",
            PfEvent::Pollution => "pollution",
            PfEvent::Resident => "resident",
        }
    }
}

/// Why an SVR pseudo-runahead-mode (PRM) round ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrmEnd {
    /// The highest-stall-latency load came around again.
    Hslr,
    /// The round timed out.
    Timeout,
    /// A different striding load retargeted the HSLR.
    Retarget,
}

impl PrmEnd {
    pub fn name(self) -> &'static str {
        match self {
            PrmEnd::Hslr => "hslr",
            PrmEnd::Timeout => "timeout",
            PrmEnd::Retarget => "retarget",
        }
    }
}

fn mem_kind_from_name(name: &str) -> Option<MemKind> {
    Some(match name {
        "load" => MemKind::DemandLoad,
        "store" => MemKind::DemandStore,
        "ifetch" => MemKind::InstFetch,
        "stride_pf" => MemKind::StridePf,
        "imp_pf" => MemKind::ImpPf,
        "svr_pf" => MemKind::SvrPf,
        _ => return None,
    })
}

/// A single trace event. Cycle fields are absolute simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// CPI-stack attribution: at `cycle` the core charged `base` cycles to
    /// [`StallTag::Base`] and `stall` cycles to `bucket`. Mirrors the
    /// aggregate `CpiStack` charges exactly, so summing `Attrib` events over
    /// a run reproduces the final stack. `pc` is the guest instruction the
    /// stall is blamed on: the producer load for data stalls, the branch for
    /// redirects, the fetched/issuing instruction otherwise.
    Attrib {
        cycle: u64,
        bucket: StallTag,
        base: u8,
        stall: u64,
        pc: u64,
    },
    /// A memory access span: issued at `start`, data available at `complete`.
    /// `pc` is the guest instruction that generated the access (for hardware
    /// prefetches, the load whose training triggered it). `miss` mirrors the
    /// aggregate L1 miss counters exactly — it is also set for accesses that
    /// coalesce onto an in-flight line (reported with `level == L1`), so
    /// per-PC miss totals reconcile with `MemStats`.
    Mem {
        start: u64,
        complete: u64,
        addr: u64,
        level: MemLevel,
        kind: MemKind,
        pc: u64,
        miss: bool,
    },
    /// An MSHR was allocated for `line` and will fill (retire) at `fill_at`.
    MshrAlloc { cycle: u64, line: u64, fill_at: u64 },
    /// An access coalesced onto an in-flight MSHR for `line`.
    MshrCoalesce { cycle: u64, line: u64 },
    /// The MSHR tracking `line` retired (fill completed). Emitted at
    /// allocation time with a future timestamp — the simulator knows fill
    /// times eagerly.
    MshrRetire { cycle: u64, line: u64 },
    /// A DRAM transaction occupied the device queue from `enter` to `leave`.
    Dram { enter: u64, leave: u64, write: bool },
    /// A TLB miss triggered a page walk from `cycle` to `done`, charged to
    /// the access issued by guest instruction `pc`.
    TlbWalk { cycle: u64, done: u64, pc: u64 },
    /// A prefetch-efficacy outcome (see [`PfEvent`]) for a prefetch of
    /// `kind` triggered by the load at guest `pc`.
    Pf {
        cycle: u64,
        kind: MemKind,
        pc: u64,
        outcome: PfEvent,
    },
    /// SVR entered a pseudo-runahead round targeting `hslr_pc` with `lanes`
    /// vector lanes.
    PrmEnter { cycle: u64, hslr_pc: u64, lanes: u32 },
    /// The current SVR round ended.
    PrmExit { cycle: u64, reason: PrmEnd },
    /// SVR issued a scalar-vector chain (head load fan-out) for `pc`.
    SvrChain { cycle: u64, pc: u64, lanes: u32 },
    /// The SRF recycled a register instead of allocating a fresh one.
    SrfRecycle { cycle: u64 },
}

impl TraceEvent {
    /// The primary timestamp of the event (start-of-span for span events).
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Attrib { cycle, .. }
            | TraceEvent::MshrAlloc { cycle, .. }
            | TraceEvent::MshrCoalesce { cycle, .. }
            | TraceEvent::MshrRetire { cycle, .. }
            | TraceEvent::TlbWalk { cycle, .. }
            | TraceEvent::Pf { cycle, .. }
            | TraceEvent::PrmEnter { cycle, .. }
            | TraceEvent::PrmExit { cycle, .. }
            | TraceEvent::SvrChain { cycle, .. }
            | TraceEvent::SrfRecycle { cycle } => cycle,
            TraceEvent::Mem { start, .. } => start,
            TraceEvent::Dram { enter, .. } => enter,
        }
    }

    /// Encodes the event as a flat JSON record (`{"ev": <kind>, ...}`),
    /// suitable for raw event dumps. [`TraceEvent::from_json`] inverts it.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        fn u(m: &mut Vec<(String, Json)>, k: &str, v: u64) {
            m.push((k.to_string(), Json::u64(v)));
        }
        let mut m = vec![("ev".to_string(), Json::str(self.kind_name()))];
        match *self {
            TraceEvent::Attrib {
                cycle,
                bucket,
                base,
                stall,
                pc,
            } => {
                u(&mut m, "cycle", cycle);
                m.push(("bucket".into(), Json::str(bucket.name())));
                u(&mut m, "base", u64::from(base));
                u(&mut m, "stall", stall);
                u(&mut m, "pc", pc);
            }
            TraceEvent::Mem {
                start,
                complete,
                addr,
                level,
                kind,
                pc,
                miss,
            } => {
                u(&mut m, "start", start);
                u(&mut m, "complete", complete);
                u(&mut m, "addr", addr);
                m.push(("level".into(), Json::str(level.name())));
                m.push(("kind".into(), Json::str(kind.name())));
                u(&mut m, "pc", pc);
                m.push(("miss".into(), Json::Bool(miss)));
            }
            TraceEvent::MshrAlloc {
                cycle,
                line,
                fill_at,
            } => {
                u(&mut m, "cycle", cycle);
                u(&mut m, "line", line);
                u(&mut m, "fill_at", fill_at);
            }
            TraceEvent::MshrCoalesce { cycle, line } | TraceEvent::MshrRetire { cycle, line } => {
                u(&mut m, "cycle", cycle);
                u(&mut m, "line", line);
            }
            TraceEvent::Dram { enter, leave, write } => {
                u(&mut m, "enter", enter);
                u(&mut m, "leave", leave);
                m.push(("write".into(), Json::Bool(write)));
            }
            TraceEvent::TlbWalk { cycle, done, pc } => {
                u(&mut m, "cycle", cycle);
                u(&mut m, "done", done);
                u(&mut m, "pc", pc);
            }
            TraceEvent::Pf {
                cycle,
                kind,
                pc,
                outcome,
            } => {
                u(&mut m, "cycle", cycle);
                m.push(("kind".into(), Json::str(kind.name())));
                u(&mut m, "pc", pc);
                m.push(("outcome".into(), Json::str(outcome.name())));
            }
            TraceEvent::PrmEnter {
                cycle,
                hslr_pc,
                lanes,
            } => {
                u(&mut m, "cycle", cycle);
                u(&mut m, "hslr_pc", hslr_pc);
                u(&mut m, "lanes", u64::from(lanes));
            }
            TraceEvent::PrmExit { cycle, reason } => {
                u(&mut m, "cycle", cycle);
                m.push(("reason".into(), Json::str(reason.name())));
            }
            TraceEvent::SvrChain { cycle, pc, lanes } => {
                u(&mut m, "cycle", cycle);
                u(&mut m, "pc", pc);
                u(&mut m, "lanes", u64::from(lanes));
            }
            TraceEvent::SrfRecycle { cycle } => u(&mut m, "cycle", cycle),
        }
        Json::Obj(m)
    }

    /// Decodes a record produced by [`TraceEvent::to_json`]. Returns `None`
    /// for malformed or unknown records.
    pub fn from_json(doc: &crate::json::Json) -> Option<TraceEvent> {
        use crate::json::Json;
        let u = |k: &str| doc.get(k).and_then(Json::as_u64);
        let s = |k: &str| doc.get(k).and_then(Json::as_str);
        Some(match s("ev")? {
            "attrib" => {
                let bucket_name = s("bucket")?;
                TraceEvent::Attrib {
                    cycle: u("cycle")?,
                    bucket: *StallTag::ALL.iter().find(|t| t.name() == bucket_name)?,
                    base: u8::try_from(u("base")?).ok()?,
                    stall: u("stall")?,
                    pc: u("pc")?,
                }
            }
            "mem" => TraceEvent::Mem {
                start: u("start")?,
                complete: u("complete")?,
                addr: u("addr")?,
                level: match s("level")? {
                    "L1" => MemLevel::L1,
                    "L2" => MemLevel::L2,
                    "DRAM" => MemLevel::Dram,
                    _ => return None,
                },
                kind: mem_kind_from_name(s("kind")?)?,
                pc: u("pc")?,
                miss: doc.get("miss").and_then(Json::as_bool)?,
            },
            "mshr_alloc" => TraceEvent::MshrAlloc {
                cycle: u("cycle")?,
                line: u("line")?,
                fill_at: u("fill_at")?,
            },
            "mshr_coalesce" => TraceEvent::MshrCoalesce {
                cycle: u("cycle")?,
                line: u("line")?,
            },
            "mshr_retire" => TraceEvent::MshrRetire {
                cycle: u("cycle")?,
                line: u("line")?,
            },
            "dram" => TraceEvent::Dram {
                enter: u("enter")?,
                leave: u("leave")?,
                write: doc.get("write").and_then(Json::as_bool)?,
            },
            "tlb_walk" => TraceEvent::TlbWalk {
                cycle: u("cycle")?,
                done: u("done")?,
                pc: u("pc")?,
            },
            "pf" => {
                let outcome_name = s("outcome")?;
                TraceEvent::Pf {
                    cycle: u("cycle")?,
                    kind: mem_kind_from_name(s("kind")?)?,
                    pc: u("pc")?,
                    outcome: *PfEvent::ALL.iter().find(|o| o.name() == outcome_name)?,
                }
            }
            "prm_enter" => TraceEvent::PrmEnter {
                cycle: u("cycle")?,
                hslr_pc: u("hslr_pc")?,
                lanes: u32::try_from(u("lanes")?).ok()?,
            },
            "prm_exit" => TraceEvent::PrmExit {
                cycle: u("cycle")?,
                reason: match s("reason")? {
                    "hslr" => PrmEnd::Hslr,
                    "timeout" => PrmEnd::Timeout,
                    "retarget" => PrmEnd::Retarget,
                    _ => return None,
                },
            },
            "svr_chain" => TraceEvent::SvrChain {
                cycle: u("cycle")?,
                pc: u("pc")?,
                lanes: u32::try_from(u("lanes")?).ok()?,
            },
            "srf_recycle" => TraceEvent::SrfRecycle { cycle: u("cycle")? },
            _ => return None,
        })
    }

    /// Stable event-type name used in JSON artifacts.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::Attrib { .. } => "attrib",
            TraceEvent::Mem { .. } => "mem",
            TraceEvent::MshrAlloc { .. } => "mshr_alloc",
            TraceEvent::MshrCoalesce { .. } => "mshr_coalesce",
            TraceEvent::MshrRetire { .. } => "mshr_retire",
            TraceEvent::Dram { .. } => "dram",
            TraceEvent::TlbWalk { .. } => "tlb_walk",
            TraceEvent::Pf { .. } => "pf",
            TraceEvent::PrmEnter { .. } => "prm_enter",
            TraceEvent::PrmExit { .. } => "prm_exit",
            TraceEvent::SvrChain { .. } => "svr_chain",
            TraceEvent::SrfRecycle { .. } => "srf_recycle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_tag_indices_match_all_order() {
        for (i, tag) in StallTag::ALL.iter().enumerate() {
            assert_eq!(tag.index(), i);
        }
    }

    #[test]
    fn event_cycle_picks_span_start() {
        let ev = TraceEvent::Mem {
            start: 7,
            complete: 100,
            addr: 0x40,
            level: MemLevel::Dram,
            kind: MemKind::DemandLoad,
            pc: 3,
            miss: true,
        };
        assert_eq!(ev.cycle(), 7);
        let ev = TraceEvent::Dram {
            enter: 12,
            leave: 40,
            write: true,
        };
        assert_eq!(ev.cycle(), 12);
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = StallTag::ALL.iter().map(|t| t.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
