//! # svr-trace — structured event tracing for the SVR simulator
//!
//! A leaf crate (no dependencies) providing:
//!
//! - [`TraceEvent`]: typed, `Copy`, cycle-stamped events covering the cores
//!   (CPI-stack attribution), the SVR engine (runahead episodes, chain issue,
//!   SRF recycling) and the memory hierarchy (per-level hits/misses, MSHR
//!   lifecycle, DRAM queue spans, TLB walks).
//! - [`TraceSink`]: the sink trait. Simulators are generic over
//!   `S: TraceSink` and guard every emission with `if S::ENABLED`, so the
//!   default [`NullSink`] monomorphizes to *zero* code — untraced runs are
//!   bit-identical to pre-instrumentation builds (CI asserts this).
//! - [`RingSink`]: a bounded most-recent-events buffer.
//! - [`PerfettoWriter`] / [`PerfettoSink`]: a streaming Chrome
//!   `trace_event` JSON writer loadable in `chrome://tracing` and Perfetto.
//! - [`WindowedMetrics`]: interval CPI stacks, MLP timelines and occupancy
//!   histograms derived from the event stream.
//! - [`json`]: the workspace's hand-rolled JSON tree (re-exported by
//!   `svr-sim` as `svr_sim::json`).
//!
//! ```
//! use svr_trace::{RingSink, TraceEvent, TraceSink};
//!
//! let mut sink = RingSink::new(1024);
//! sink.emit(&TraceEvent::SrfRecycle { cycle: 42 });
//! assert_eq!(sink.total(), 1);
//! ```

pub mod json;

mod event;
mod metrics;
mod perfetto;
mod sink;

pub use event::{MemKind, MemLevel, PfEvent, PrmEnd, StallTag, TraceEvent};
pub use metrics::{Window, WindowReport, WindowedMetrics};
pub use perfetto::{PerfettoSink, PerfettoWriter};
pub use sink::{NullSink, RingSink, TraceSink};
