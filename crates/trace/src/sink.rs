//! Trace sinks.
//!
//! The [`TraceSink`] trait is designed so that a disabled trace is *free*:
//! simulators are generic over `S: TraceSink`, every emission site is guarded
//! by `if S::ENABLED { ... }`, and [`NullSink`] sets `ENABLED = false` with an
//! `#[inline(always)]` no-op `emit`. After monomorphization the guard is a
//! compile-time constant and the whole event-construction block is dead code —
//! the untraced simulator binary is bit-for-bit the same computation as before
//! the instrumentation existed. CI verifies this behaviorally (identical
//! `RunReport`s) and with a wall-time budget.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// A consumer of trace events.
///
/// `Debug` is a supertrait so simulator structs that own a sink can keep
/// `#[derive(Debug)]`.
pub trait TraceSink: std::fmt::Debug {
    /// Whether emission sites should construct and emit events at all.
    /// Sites must guard with `if S::ENABLED` so disabled tracing folds away.
    const ENABLED: bool = true;

    /// Consume one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// The zero-cost disabled sink.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// Forwarding impl so a caller can keep ownership of a sink and lend it to a
/// simulator for the duration of one run.
impl<S: TraceSink> TraceSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn emit(&mut self, ev: &TraceEvent) {
        (**self).emit(ev);
    }
}

/// Tee: every event goes to both sinks. Enabled if either side is.
impl<A: TraceSink, B: TraceSink> TraceSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn emit(&mut self, ev: &TraceEvent) {
        if A::ENABLED {
            self.0.emit(ev);
        }
        if B::ENABLED {
            self.1.emit(ev);
        }
    }
}

/// A bounded ring buffer of the most recent events.
///
/// When full, the oldest event is dropped; `total()` still counts every event
/// ever emitted so callers can report how many were shed.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    total: u64,
}

impl RingSink {
    /// `cap` is clamped to at least 1.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingSink {
            buf: VecDeque::with_capacity(cap),
            cap,
            total: 0,
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted into this sink.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Oldest-to-newest iteration over the retained events.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(*ev);
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemKind, MemLevel};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::SrfRecycle { cycle }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        let mut s = NullSink;
        s.emit(&ev(1)); // no-op, must not panic
    }

    #[test]
    fn ring_sink_bounds_and_counts() {
        let mut s = RingSink::new(3);
        for c in 0..10 {
            s.emit(&ev(c));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total(), 10);
        assert_eq!(s.dropped(), 7);
        let cycles: Vec<u64> = s.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn mut_ref_forwards() {
        let mut s = RingSink::new(8);
        {
            let mut lent: &mut RingSink = &mut s;
            TraceSink::emit(&mut lent, &ev(5));
        }
        assert_eq!(s.total(), 1);
        assert!(<&mut RingSink as TraceSink>::ENABLED);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn tuple_tees_to_both_sides() {
        let mut pair = (RingSink::new(4), RingSink::new(4));
        pair.emit(&TraceEvent::Mem {
            start: 1,
            complete: 9,
            addr: 0x80,
            level: MemLevel::L2,
            kind: MemKind::DemandLoad,
            pc: 0,
            miss: true,
        });
        assert_eq!(pair.0.total(), 1);
        assert_eq!(pair.1.total(), 1);
        assert!(<(RingSink, RingSink) as TraceSink>::ENABLED);
        assert!(<(NullSink, RingSink) as TraceSink>::ENABLED);
        assert!(!<(NullSink, NullSink) as TraceSink>::ENABLED);
    }

    #[test]
    fn tuple_with_null_side_skips_it() {
        // A (NullSink, RingSink) tee must still deliver to the live side.
        let mut pair = (NullSink, RingSink::new(4));
        pair.emit(&ev(3));
        assert_eq!(pair.1.total(), 1);
    }
}
