//! A minimal hand-rolled JSON tree, writer and parser.
//!
//! The vendored registry is offline, so serde is unavailable; the simulator
//! needs only enough JSON for result-cache files, figure reports and trace
//! artifacts. Numbers keep their exact source text (`Json::Num` stores the
//! token), so a `u64` or shortest-round-trip `f64` survives write → parse →
//! write bit-identically — the property the result cache's "fresh vs. cached
//! reports are identical" guarantee rests on.
//!
//! This module lives in `svr-trace` (the bottom-most crate that needs it) and
//! is re-exported as `svr_sim::json` for backwards compatibility.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (stable output).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its exact textual token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Number from a `u64` (exact).
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Number from an `f64` using Rust's shortest round-trip formatting;
    /// non-finite values become `null` (JSON has no NaN/inf).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// String value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a numeric token that parses as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as `f64` (also accepts `null` as NaN-free `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (for human-read report files).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Writes `s` as a JSON string literal (quotes included) into `out`.
/// Escapes `"`, `\`, and all control characters below U+0020; everything
/// else (including non-ASCII) is passed through as raw UTF-8.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x80 => {
                out.push(byte as char);
                *pos += 1;
            }
            Some(_) => {
                // One multi-byte UTF-8 scalar: decode from a 4-byte window.
                // Validating the whole remaining input here instead made
                // string parsing quadratic — a multi-megabyte crash dump
                // took effectively forever to load.
                let window = &b[*pos..(*pos + 4).min(b.len())];
                let valid = match std::str::from_utf8(window) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&window[..e.valid_up_to()]).unwrap_or("")
                    }
                    Err(e) => return Err(format!("{e} at byte {pos}")),
                };
                match valid.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err(format!("invalid UTF-8 at byte {pos}")),
                }
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let token = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if token.is_empty() || token.parse::<f64>().is_err() {
        return Err(format!("bad number `{token}` at byte {start}"));
    }
    Ok(Json::Num(token.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-1.5", "18446744073709551615"] {
            let v = Json::parse(text).expect(text);
            assert_eq!(v.dump(), text);
        }
    }

    #[test]
    fn u64_is_exact_beyond_f64_precision() {
        let v = Json::u64(u64::MAX);
        let back = Json::parse(&v.dump()).expect("parses");
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    #[allow(clippy::excessive_precision)]
    fn f64_shortest_form_round_trips() {
        for x in [
            0.1,
            1.0 / 3.0,
            2.5e-7,
            123456789.123456789,
            f64::MIN_POSITIVE,
        ] {
            let v = Json::f64(x);
            let y = Json::parse(&v.dump())
                .expect("parses")
                .as_f64()
                .expect("num");
            assert_eq!(x.to_bits(), y.to_bits(), "{x} not bit-identical");
        }
        assert_eq!(Json::f64(f64::NAN), Json::Null);
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("fig11 \"CPI\"\n")),
            ("rows".into(), Json::Arr(vec![Json::u64(1), Json::f64(2.5)])),
            ("empty".into(), Json::Arr(vec![])),
            ("flag".into(), Json::Bool(true)),
        ]);
        for text in [doc.dump(), doc.pretty()] {
            assert_eq!(Json::parse(&text).expect("parses"), doc);
        }
        assert_eq!(
            doc.get("rows").and_then(|r| r.as_arr()).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_survive() {
        let s = Json::str("tab\there \"quoted\" back\\slash \u{1}");
        let text = s.dump();
        assert_eq!(Json::parse(&text).expect("parses"), s);
    }

    #[test]
    fn large_string_heavy_documents_parse_in_linear_time() {
        // Regression: parse_string used to re-validate the entire remaining
        // input as UTF-8 once per character, so a multi-megabyte crash dump
        // took hours to load. This hangs rather than fails if that returns.
        let mut s = String::with_capacity(400_000);
        for i in 0..100_000 {
            s.push(match i % 4 {
                0 => 'a',
                1 => 'é',
                2 => '中',
                _ => '🦀',
            });
        }
        let doc = Json::Arr(vec![Json::str(&s), Json::str(&s)]);
        let back = Json::parse(&doc.dump()).expect("parses");
        assert_eq!(back.as_arr().and_then(|a| a[0].as_str()), Some(s.as_str()));
    }

    #[test]
    fn escaping_produces_expected_literals() {
        let cases: [(&str, &str); 7] = [
            ("plain", "\"plain\""),
            ("quo\"te", "\"quo\\\"te\""),
            ("back\\slash", "\"back\\\\slash\""),
            ("line\nfeed", "\"line\\nfeed\""),
            ("car\rtab\t", "\"car\\rtab\\t\""),
            ("nul\u{0}bell\u{7}esc\u{1b}", "\"nul\\u0000bell\\u0007esc\\u001b\""),
            ("unit\u{1f}sep", "\"unit\\u001fsep\""),
        ];
        for (raw, expected) in cases {
            assert_eq!(Json::str(raw).dump(), expected, "escaping {raw:?}");
        }
    }

    #[test]
    fn every_control_char_round_trips() {
        let all_ctl: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
        let v = Json::str(&all_ctl);
        let text = v.dump();
        // The serialized form must be pure ASCII with no raw control bytes.
        assert!(text.bytes().all(|b| (0x20..0x7f).contains(&b)), "{text:?}");
        assert_eq!(Json::parse(&text).expect("parses"), v);
    }

    #[test]
    fn non_ascii_passes_through_raw_and_round_trips() {
        for raw in ["héllo", "日本語", "emoji \u{1f600} done", "mixed\tπ\n√"] {
            let v = Json::str(raw);
            let text = v.dump();
            assert_eq!(Json::parse(&text).expect("parses"), v, "{raw:?}");
        }
        // Non-ASCII is not \u-escaped: the raw bytes appear verbatim.
        assert_eq!(Json::str("π").dump(), "\"π\"");
    }

    #[test]
    fn object_keys_are_escaped_too() {
        let doc = Json::Obj(vec![("we\"ird\nkey".into(), Json::u64(1))]);
        let text = doc.dump();
        assert_eq!(text, "{\"we\\\"ird\\nkey\":1}");
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }
}
