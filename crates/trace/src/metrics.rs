//! Windowed metrics computed over the event stream.
//!
//! [`WindowedMetrics`] is a [`TraceSink`] that bins events into fixed-size
//! cycle intervals and, at [`WindowedMetrics::finish`], derives:
//!
//! - interval CPI stacks (from `Attrib` events, which mirror the aggregate
//!   `CpiStack` charges exactly);
//! - an in-flight-miss (MLP) timeline: average and peak number of concurrent
//!   DRAM read transactions per interval;
//! - MSHR and DRAM-queue occupancy histograms (cycles spent at each
//!   occupancy level);
//! - SVR runahead episode spans and the peak DRAM-read overlap observed
//!   *inside* an episode — the headline "runahead extracts MLP" signal.

use crate::event::{MemLevel, StallTag, TraceEvent};
use crate::json::Json;
use crate::sink::TraceSink;

/// Per-interval accumulators (filled during the run).
#[derive(Debug, Clone, Default)]
struct IntervalRow {
    /// Cycles charged per [`StallTag`] (indexed by `StallTag::index()`).
    attributed: [u64; 7],
    /// Instructions issued (one per `Attrib` with `base > 0`).
    issued: u64,
    hits_l1: u64,
    hits_l2: u64,
    misses_dram: u64,
    prefetches: u64,
    svr_chains: u64,
    srf_recycles: u64,
}

/// One finished interval in a [`WindowReport`].
#[derive(Debug, Clone)]
pub struct Window {
    /// First cycle of the interval.
    pub start: u64,
    /// Cycles charged per [`StallTag`] (order of [`StallTag::ALL`]).
    pub attributed: [u64; 7],
    pub issued: u64,
    pub hits_l1: u64,
    pub hits_l2: u64,
    pub misses_dram: u64,
    pub prefetches: u64,
    pub svr_chains: u64,
    pub srf_recycles: u64,
    /// Average concurrent DRAM reads over the interval (MLP timeline).
    pub avg_dram_inflight: f64,
    /// Peak concurrent DRAM reads observed inside the interval.
    pub peak_dram_inflight: u64,
}

/// The finished windowed-metrics report.
#[derive(Debug, Clone)]
pub struct WindowReport {
    pub interval: u64,
    pub windows: Vec<Window>,
    /// `mshr_occupancy[n]` = cycles spent with exactly `n` MSHRs in flight.
    pub mshr_occupancy: Vec<u64>,
    /// `dram_queue_occupancy[n]` = cycles with `n` DRAM transactions queued.
    pub dram_queue_occupancy: Vec<u64>,
    /// `(enter, exit)` cycles of each SVR runahead episode.
    pub prm_episodes: Vec<(u64, u64)>,
    /// Peak number of concurrently in-flight DRAM reads anywhere in the run.
    pub max_dram_overlap: u64,
    /// Peak concurrent DRAM reads observed while an SVR episode was open.
    pub max_dram_overlap_in_prm: u64,
    /// Total events consumed by the sink.
    pub events: u64,
}

impl WindowReport {
    pub fn to_json(&self) -> Json {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                let stack = StallTag::ALL
                    .iter()
                    .map(|t| (t.name().to_string(), Json::u64(w.attributed[t.index()])))
                    .collect();
                Json::Obj(vec![
                    ("start".into(), Json::u64(w.start)),
                    ("cpi_stack".into(), Json::Obj(stack)),
                    ("issued".into(), Json::u64(w.issued)),
                    ("hits_l1".into(), Json::u64(w.hits_l1)),
                    ("hits_l2".into(), Json::u64(w.hits_l2)),
                    ("misses_dram".into(), Json::u64(w.misses_dram)),
                    ("prefetches".into(), Json::u64(w.prefetches)),
                    ("svr_chains".into(), Json::u64(w.svr_chains)),
                    ("srf_recycles".into(), Json::u64(w.srf_recycles)),
                    ("avg_dram_inflight".into(), Json::f64(w.avg_dram_inflight)),
                    ("peak_dram_inflight".into(), Json::u64(w.peak_dram_inflight)),
                ])
            })
            .collect();
        let hist = |h: &[u64]| Json::Arr(h.iter().map(|&v| Json::u64(v)).collect());
        Json::Obj(vec![
            ("interval".into(), Json::u64(self.interval)),
            ("windows".into(), Json::Arr(windows)),
            ("mshr_occupancy".into(), hist(&self.mshr_occupancy)),
            (
                "dram_queue_occupancy".into(),
                hist(&self.dram_queue_occupancy),
            ),
            (
                "prm_episodes".into(),
                Json::Arr(
                    self.prm_episodes
                        .iter()
                        .map(|&(b, e)| Json::Arr(vec![Json::u64(b), Json::u64(e)]))
                        .collect(),
                ),
            ),
            ("max_dram_overlap".into(), Json::u64(self.max_dram_overlap)),
            (
                "max_dram_overlap_in_prm".into(),
                Json::u64(self.max_dram_overlap_in_prm),
            ),
            ("events".into(), Json::u64(self.events)),
        ])
    }
}

/// Sink that accumulates [`WindowReport`] inputs during a run.
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    interval: u64,
    rows: Vec<IntervalRow>,
    /// `(enter, leave)` spans of DRAM *read* transactions.
    dram_reads: Vec<(u64, u64)>,
    mshr_deltas: Vec<(u64, i64)>,
    dramq_deltas: Vec<(u64, i64)>,
    prm_spans: Vec<(u64, u64)>,
    open_prm: Option<u64>,
    max_cycle: u64,
    events: u64,
}

impl WindowedMetrics {
    /// `interval` is clamped to at least 1 cycle.
    pub fn new(interval: u64) -> Self {
        WindowedMetrics {
            interval: interval.max(1),
            rows: Vec::new(),
            dram_reads: Vec::new(),
            mshr_deltas: Vec::new(),
            dramq_deltas: Vec::new(),
            prm_spans: Vec::new(),
            open_prm: None,
            max_cycle: 0,
            events: 0,
        }
    }

    pub fn interval(&self) -> u64 {
        self.interval
    }

    fn row(&mut self, cycle: u64) -> &mut IntervalRow {
        let idx = (cycle / self.interval) as usize;
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, IntervalRow::default);
        }
        &mut self.rows[idx]
    }

    fn see(&mut self, cycle: u64) {
        self.max_cycle = self.max_cycle.max(cycle);
    }

    /// Consumes the accumulators and derives the report.
    pub fn finish(mut self) -> WindowReport {
        // Close a dangling episode at the last observed cycle.
        if let Some(enter) = self.open_prm.take() {
            self.prm_spans.push((enter, self.max_cycle.max(enter)));
        }
        let interval = self.interval;
        let n_windows = self
            .rows
            .len()
            .max((self.max_cycle / interval) as usize + usize::from(self.max_cycle > 0));
        self.rows.resize_with(n_windows.max(1), IntervalRow::default);

        // MLP timeline: per-interval busy-cycle integral and peak from the
        // DRAM read spans, plus the global / in-PRM overlap peaks from a
        // single sorted sweep.
        let mut inflight_integral = vec![0u64; self.rows.len()];
        let mut peak_inflight = vec![0u64; self.rows.len()];
        let mut sweep: Vec<(u64, i64)> = Vec::with_capacity(self.dram_reads.len() * 2);
        for &(enter, leave) in &self.dram_reads {
            let leave = leave.max(enter + 1);
            sweep.push((enter, 1));
            sweep.push((leave, -1));
            // Integral: overlap of [enter, leave) with each interval.
            let first = (enter / interval) as usize;
            let last = ((leave - 1) / interval) as usize;
            for (i, integral) in inflight_integral
                .iter_mut()
                .enumerate()
                .take(self.rows.len().min(last + 1))
                .skip(first)
            {
                let w_start = i as u64 * interval;
                let w_end = w_start + interval;
                let lo = enter.max(w_start);
                let hi = leave.min(w_end);
                *integral += hi.saturating_sub(lo);
            }
        }
        sweep.sort_unstable();
        let mut prm_sorted = self.prm_spans.clone();
        prm_sorted.sort_unstable();
        let in_prm = |ts: u64| {
            prm_sorted
                .iter()
                .take_while(|&&(b, _)| b <= ts)
                .any(|&(_, e)| ts < e)
        };
        let mut occ: i64 = 0;
        let mut max_overlap = 0u64;
        let mut max_overlap_in_prm = 0u64;
        let mut i = 0;
        while i < sweep.len() {
            let ts = sweep[i].0;
            while i < sweep.len() && sweep[i].0 == ts {
                occ += sweep[i].1;
                i += 1;
            }
            let level = occ.max(0) as u64;
            max_overlap = max_overlap.max(level);
            if level > max_overlap_in_prm && in_prm(ts) {
                max_overlap_in_prm = level;
            }
            let idx = (ts / interval) as usize;
            if idx < peak_inflight.len() {
                peak_inflight[idx] = peak_inflight[idx].max(level);
            }
        }

        let occupancy_hist = |deltas: &mut Vec<(u64, i64)>| -> Vec<u64> {
            deltas.sort_unstable();
            let mut hist: Vec<u64> = Vec::new();
            let mut occ: i64 = 0;
            let mut prev_ts: Option<u64> = None;
            let mut i = 0;
            while i < deltas.len() {
                let ts = deltas[i].0;
                if let Some(p) = prev_ts {
                    let level = occ.max(0) as usize;
                    if level >= hist.len() {
                        hist.resize(level + 1, 0);
                    }
                    hist[level] += ts - p;
                }
                while i < deltas.len() && deltas[i].0 == ts {
                    occ += deltas[i].1;
                    i += 1;
                }
                prev_ts = Some(ts);
            }
            hist
        };
        let mut mshr_deltas = std::mem::take(&mut self.mshr_deltas);
        let mut dramq_deltas = std::mem::take(&mut self.dramq_deltas);
        let mshr_occupancy = occupancy_hist(&mut mshr_deltas);
        let dram_queue_occupancy = occupancy_hist(&mut dramq_deltas);

        let windows = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| Window {
                start: i as u64 * interval,
                attributed: r.attributed,
                issued: r.issued,
                hits_l1: r.hits_l1,
                hits_l2: r.hits_l2,
                misses_dram: r.misses_dram,
                prefetches: r.prefetches,
                svr_chains: r.svr_chains,
                srf_recycles: r.srf_recycles,
                avg_dram_inflight: inflight_integral[i] as f64 / interval as f64,
                peak_dram_inflight: peak_inflight[i],
            })
            .collect();

        WindowReport {
            interval,
            windows,
            mshr_occupancy,
            dram_queue_occupancy,
            prm_episodes: self.prm_spans,
            max_dram_overlap: max_overlap,
            max_dram_overlap_in_prm: max_overlap_in_prm,
            events: self.events,
        }
    }
}

impl TraceSink for WindowedMetrics {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::Attrib {
                cycle,
                bucket,
                base,
                stall,
                ..
            } => {
                self.see(cycle);
                let row = self.row(cycle);
                row.attributed[StallTag::Base.index()] += u64::from(base);
                row.attributed[bucket.index()] += stall;
                row.issued += u64::from(base > 0);
            }
            TraceEvent::Mem {
                start,
                complete,
                level,
                kind,
                ..
            } => {
                self.see(complete);
                let row = self.row(start);
                match level {
                    MemLevel::L1 => row.hits_l1 += 1,
                    MemLevel::L2 => row.hits_l2 += 1,
                    MemLevel::Dram => row.misses_dram += 1,
                }
                if kind.is_prefetch() {
                    row.prefetches += 1;
                }
            }
            TraceEvent::MshrAlloc { cycle, fill_at, .. } => {
                self.see(fill_at);
                self.mshr_deltas.push((cycle, 1));
                self.mshr_deltas.push((fill_at.max(cycle), -1));
            }
            TraceEvent::MshrCoalesce { .. } | TraceEvent::MshrRetire { .. } => {}
            TraceEvent::Dram { enter, leave, write } => {
                self.see(leave);
                self.dramq_deltas.push((enter, 1));
                self.dramq_deltas.push((leave.max(enter), -1));
                if !write {
                    self.dram_reads.push((enter, leave));
                }
            }
            TraceEvent::TlbWalk { done, .. } => self.see(done),
            TraceEvent::Pf { cycle, .. } => self.see(cycle),
            TraceEvent::PrmEnter { cycle, .. } => {
                self.see(cycle);
                // A nested enter (shouldn't happen) closes the previous one.
                if let Some(enter) = self.open_prm.replace(cycle) {
                    self.prm_spans.push((enter, cycle));
                }
            }
            TraceEvent::PrmExit { cycle, .. } => {
                self.see(cycle);
                if let Some(enter) = self.open_prm.take() {
                    self.prm_spans.push((enter, cycle.max(enter)));
                }
            }
            TraceEvent::SvrChain { cycle, .. } => {
                self.see(cycle);
                self.row(cycle).svr_chains += 1;
            }
            TraceEvent::SrfRecycle { cycle } => {
                self.see(cycle);
                self.row(cycle).srf_recycles += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemKind, PrmEnd};

    #[test]
    fn attrib_events_bin_into_interval_cpi_stacks() {
        let mut m = WindowedMetrics::new(100);
        m.emit(&TraceEvent::Attrib {
            cycle: 10,
            bucket: StallTag::MemDram,
            base: 1,
            stall: 40,
            pc: 0,
        });
        m.emit(&TraceEvent::Attrib {
            cycle: 150,
            bucket: StallTag::Branch,
            base: 1,
            stall: 5,
            pc: 0,
        });
        let r = m.finish();
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].attributed[StallTag::Base.index()], 1);
        assert_eq!(r.windows[0].attributed[StallTag::MemDram.index()], 40);
        assert_eq!(r.windows[1].attributed[StallTag::Branch.index()], 5);
        assert_eq!(r.windows[0].issued, 1);
    }

    #[test]
    fn dram_overlap_peaks_are_tracked_globally_and_inside_prm() {
        let mut m = WindowedMetrics::new(1000);
        // Two overlapping reads outside any PRM episode.
        m.emit(&TraceEvent::Dram {
            enter: 10,
            leave: 100,
            write: false,
        });
        m.emit(&TraceEvent::Dram {
            enter: 20,
            leave: 110,
            write: false,
        });
        // Three overlapping reads inside an episode.
        m.emit(&TraceEvent::PrmEnter {
            cycle: 200,
            hslr_pc: 0,
            lanes: 8,
        });
        for k in 0..3 {
            m.emit(&TraceEvent::Dram {
                enter: 210 + k,
                leave: 400 + k,
                write: false,
            });
        }
        m.emit(&TraceEvent::PrmExit {
            cycle: 450,
            reason: PrmEnd::Hslr,
        });
        let r = m.finish();
        assert_eq!(r.max_dram_overlap, 3);
        assert_eq!(r.max_dram_overlap_in_prm, 3);
        assert_eq!(r.prm_episodes, vec![(200, 450)]);
        assert!(r.windows[0].avg_dram_inflight > 0.0);
        assert_eq!(r.windows[0].peak_dram_inflight, 3);
    }

    #[test]
    fn writes_count_for_queue_occupancy_but_not_mlp() {
        let mut m = WindowedMetrics::new(100);
        m.emit(&TraceEvent::Dram {
            enter: 0,
            leave: 50,
            write: true,
        });
        let r = m.finish();
        assert_eq!(r.max_dram_overlap, 0);
        // 50 cycles at queue occupancy 1.
        assert_eq!(r.dram_queue_occupancy, vec![0, 50]);
    }

    #[test]
    fn mshr_occupancy_histogram_integrates_cycles() {
        let mut m = WindowedMetrics::new(100);
        m.emit(&TraceEvent::MshrAlloc {
            cycle: 0,
            line: 0x40,
            fill_at: 10,
        });
        m.emit(&TraceEvent::MshrAlloc {
            cycle: 5,
            line: 0x80,
            fill_at: 15,
        });
        let r = m.finish();
        // [0,5): occ 1, [5,10): occ 2, [10,15): occ 1 → 10 cycles at 1, 5 at 2.
        assert_eq!(r.mshr_occupancy, vec![0, 10, 5]);
    }

    #[test]
    fn dangling_prm_episode_is_closed_at_last_cycle() {
        let mut m = WindowedMetrics::new(100);
        m.emit(&TraceEvent::PrmEnter {
            cycle: 10,
            hslr_pc: 0,
            lanes: 4,
        });
        m.emit(&TraceEvent::SvrChain {
            cycle: 20,
            pc: 4,
            lanes: 4,
        });
        let r = m.finish();
        assert_eq!(r.prm_episodes, vec![(10, 20)]);
        assert_eq!(r.windows[0].svr_chains, 1);
    }

    #[test]
    fn mem_events_bin_by_level() {
        let mut m = WindowedMetrics::new(100);
        for (level, kind) in [
            (MemLevel::L1, MemKind::DemandLoad),
            (MemLevel::L2, MemKind::DemandLoad),
            (MemLevel::Dram, MemKind::SvrPf),
        ] {
            m.emit(&TraceEvent::Mem {
                start: 1,
                complete: 2,
                addr: 0,
                level,
                kind,
                pc: 0,
                miss: level != MemLevel::L1,
            });
        }
        let r = m.finish();
        let w = &r.windows[0];
        assert_eq!(
            (w.hits_l1, w.hits_l2, w.misses_dram, w.prefetches),
            (1, 1, 1, 1)
        );
    }

    #[test]
    fn report_serializes_and_round_trips_key_fields() {
        let mut m = WindowedMetrics::new(50);
        m.emit(&TraceEvent::Attrib {
            cycle: 1,
            bucket: StallTag::Base,
            base: 1,
            stall: 0,
            pc: 0,
        });
        let doc = m.finish().to_json();
        let text = doc.pretty();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back.get("interval").and_then(Json::as_u64), Some(50));
        assert!(back.get("windows").and_then(Json::as_arr).is_some());
    }
}
