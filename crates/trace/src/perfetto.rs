//! Streaming Chrome `trace_event` / Perfetto JSON writer.
//!
//! Emits the object form `{"displayTimeUnit":"ms","traceEvents":[...]}` that
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. One simulated cycle maps to one microsecond of trace time.
//!
//! Track layout (all under pid 1):
//! - tid 1 — SVR runahead: `B`/`E` spans per PRM round, instants for chain
//!   issue and SRF recycling.
//! - tid 2 — MSHR instants (coalesces).
//! - tids 10+ — DRAM transactions, greedily packed onto rows so concurrent
//!   transactions visibly stack.
//! - tids 100+ — memory-access spans that missed L1 (demand, ifetch,
//!   prefetch), greedily packed the same way.
//! - tids 300+ — TLB walks.
//! - tid 0 — `C` counter samples for MSHR and DRAM-queue occupancy. These are
//!   accumulated as deltas during the run (MSHR retire timestamps arrive out
//!   of order) and emitted sorted at [`PerfettoWriter::finish`].
//!
//! Events in the `traceEvents` array need not be globally time-sorted; only
//! `B`/`E` nesting per tid matters, and PRM rounds are strictly alternating.

use crate::event::{MemLevel, TraceEvent};
use crate::json::Json;
use std::collections::BTreeSet;
use std::io::{self, Write};

const TID_COUNTER: u64 = 0;
const TID_SVR: u64 = 1;
const TID_MSHR: u64 = 2;
const TID_DRAM_BASE: u64 = 10;
const TID_MEM_BASE: u64 = 100;
const TID_TLB_BASE: u64 = 300;

/// Streams trace events as Chrome `trace_event` JSON into any `io::Write`.
#[derive(Debug)]
pub struct PerfettoWriter<W: Write> {
    out: W,
    first: bool,
    named_tids: BTreeSet<u64>,
    /// Per-row busy-until time for greedy lane assignment.
    dram_rows: Vec<u64>,
    mem_rows: Vec<u64>,
    tlb_rows: Vec<u64>,
    /// (timestamp, ±1) occupancy deltas, sorted and emitted at finish.
    mshr_deltas: Vec<(u64, i64)>,
    dramq_deltas: Vec<(u64, i64)>,
}

/// First row whose previous span has ended by `start`; allocates a new row
/// when every existing one is still busy. Greedy packing keeps concurrent
/// spans on distinct rows so overlap is visible in the UI.
fn assign_row(rows: &mut Vec<u64>, start: u64, end: u64) -> u64 {
    for (i, busy_until) in rows.iter_mut().enumerate() {
        if *busy_until <= start {
            *busy_until = end;
            return i as u64;
        }
    }
    rows.push(end);
    (rows.len() - 1) as u64
}

impl<W: Write> PerfettoWriter<W> {
    /// Writes the document header and returns a live writer.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        Ok(PerfettoWriter {
            out,
            first: true,
            named_tids: BTreeSet::new(),
            dram_rows: Vec::new(),
            mem_rows: Vec::new(),
            tlb_rows: Vec::new(),
            mshr_deltas: Vec::new(),
            dramq_deltas: Vec::new(),
        })
    }

    fn entry(&mut self, value: &Json) -> io::Result<()> {
        if self.first {
            self.first = false;
        } else {
            self.out.write_all(b",")?;
        }
        self.out.write_all(value.dump().as_bytes())
    }

    fn name_tid(&mut self, tid: u64, name: &str) -> io::Result<()> {
        if !self.named_tids.insert(tid) {
            return Ok(());
        }
        let meta = Json::Obj(vec![
            ("ph".into(), Json::str("M")),
            ("pid".into(), Json::u64(1)),
            ("tid".into(), Json::u64(tid)),
            ("name".into(), Json::str("thread_name")),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::str(name))]),
            ),
        ]);
        self.entry(&meta)
    }

    fn span(&mut self, tid: u64, ts: u64, dur: u64, name: &str, args: Json) -> io::Result<()> {
        let mut members = vec![
            ("ph".into(), Json::str("X")),
            ("pid".into(), Json::u64(1)),
            ("tid".into(), Json::u64(tid)),
            ("ts".into(), Json::u64(ts)),
            ("dur".into(), Json::u64(dur.max(1))),
            ("name".into(), Json::str(name)),
        ];
        if !matches!(args, Json::Null) {
            members.push(("args".into(), args));
        }
        self.entry(&Json::Obj(members))
    }

    fn instant(&mut self, tid: u64, ts: u64, name: &str) -> io::Result<()> {
        self.entry(&Json::Obj(vec![
            ("ph".into(), Json::str("i")),
            ("pid".into(), Json::u64(1)),
            ("tid".into(), Json::u64(tid)),
            ("ts".into(), Json::u64(ts)),
            ("s".into(), Json::str("t")),
            ("name".into(), Json::str(name)),
        ]))
    }

    /// Consumes one trace event. `Attrib` and L1-hit `Mem` events carry no
    /// timeline information worth a track entry and are skipped (windowed
    /// metrics cover them).
    pub fn event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        match *ev {
            TraceEvent::Attrib { .. } | TraceEvent::Pf { .. } => Ok(()),
            TraceEvent::Mem {
                start,
                complete,
                addr,
                level,
                kind,
                ..
            } => {
                if level == MemLevel::L1 {
                    return Ok(());
                }
                let row = assign_row(&mut self.mem_rows, start, complete);
                let tid = TID_MEM_BASE + row;
                self.name_tid(tid, &format!("mem miss lane {row}"))?;
                let name = format!("{} {}", kind.name(), level.name());
                let args = Json::Obj(vec![(
                    "addr".into(),
                    Json::str(format!("{addr:#x}")),
                )]);
                self.span(tid, start, complete.saturating_sub(start), &name, args)
            }
            TraceEvent::MshrAlloc { cycle, fill_at, .. } => {
                self.mshr_deltas.push((cycle, 1));
                self.mshr_deltas.push((fill_at.max(cycle), -1));
                Ok(())
            }
            TraceEvent::MshrCoalesce { cycle, line } => {
                self.name_tid(TID_MSHR, "MSHR")?;
                self.instant(TID_MSHR, cycle, &format!("coalesce {line:#x}"))
            }
            // Retirement is already encoded by the alloc's `fill_at` delta.
            TraceEvent::MshrRetire { .. } => Ok(()),
            TraceEvent::Dram { enter, leave, write } => {
                self.dramq_deltas.push((enter, 1));
                self.dramq_deltas.push((leave.max(enter), -1));
                let row = assign_row(&mut self.dram_rows, enter, leave);
                let tid = TID_DRAM_BASE + row;
                self.name_tid(tid, &format!("dram lane {row}"))?;
                let name = if write { "dram_wr" } else { "dram_rd" };
                self.span(tid, enter, leave.saturating_sub(enter), name, Json::Null)
            }
            TraceEvent::TlbWalk { cycle, done, .. } => {
                let row = assign_row(&mut self.tlb_rows, cycle, done);
                let tid = TID_TLB_BASE + row;
                self.name_tid(tid, &format!("tlb walk lane {row}"))?;
                self.span(tid, cycle, done.saturating_sub(cycle), "tlb_walk", Json::Null)
            }
            TraceEvent::PrmEnter {
                cycle,
                hslr_pc,
                lanes,
            } => {
                self.name_tid(TID_SVR, "SVR runahead")?;
                self.entry(&Json::Obj(vec![
                    ("ph".into(), Json::str("B")),
                    ("pid".into(), Json::u64(1)),
                    ("tid".into(), Json::u64(TID_SVR)),
                    ("ts".into(), Json::u64(cycle)),
                    ("name".into(), Json::str(format!("PRM hslr={hslr_pc:#x}"))),
                    (
                        "args".into(),
                        Json::Obj(vec![("lanes".into(), Json::u64(u64::from(lanes)))]),
                    ),
                ]))
            }
            TraceEvent::PrmExit { cycle, reason } => {
                self.name_tid(TID_SVR, "SVR runahead")?;
                self.entry(&Json::Obj(vec![
                    ("ph".into(), Json::str("E")),
                    ("pid".into(), Json::u64(1)),
                    ("tid".into(), Json::u64(TID_SVR)),
                    ("ts".into(), Json::u64(cycle)),
                    (
                        "args".into(),
                        Json::Obj(vec![("reason".into(), Json::str(reason.name()))]),
                    ),
                ]))
            }
            TraceEvent::SvrChain { cycle, pc, lanes } => {
                self.name_tid(TID_SVR, "SVR runahead")?;
                self.instant(TID_SVR, cycle, &format!("chain pc={pc:#x} lanes={lanes}"))
            }
            TraceEvent::SrfRecycle { cycle } => {
                self.name_tid(TID_SVR, "SVR runahead")?;
                self.instant(TID_SVR, cycle, "srf_recycle")
            }
        }
    }

    fn counter_track(&mut self, name: &str, deltas: &[(u64, i64)]) -> io::Result<()> {
        let mut sorted = deltas.to_vec();
        sorted.sort_unstable();
        let mut occ: i64 = 0;
        let mut i = 0;
        while i < sorted.len() {
            let ts = sorted[i].0;
            while i < sorted.len() && sorted[i].0 == ts {
                occ += sorted[i].1;
                i += 1;
            }
            self.entry(&Json::Obj(vec![
                ("ph".into(), Json::str("C")),
                ("pid".into(), Json::u64(1)),
                ("tid".into(), Json::u64(TID_COUNTER)),
                ("ts".into(), Json::u64(ts)),
                ("name".into(), Json::str(name)),
                (
                    "args".into(),
                    Json::Obj(vec![("occ".into(), Json::u64(occ.max(0) as u64))]),
                ),
            ]))?;
        }
        Ok(())
    }

    /// Emits the deferred counter tracks, closes the document (attaching
    /// `metadata` if given — e.g. windowed metrics) and returns the writer.
    pub fn finish(mut self, metadata: Option<Json>) -> io::Result<W> {
        let mshr = std::mem::take(&mut self.mshr_deltas);
        let dramq = std::mem::take(&mut self.dramq_deltas);
        self.counter_track("MSHR occupancy", &mshr)?;
        self.counter_track("DRAM queue occupancy", &dramq)?;
        self.out.write_all(b"]")?;
        if let Some(meta) = metadata {
            self.out.write_all(b",\"metadata\":")?;
            self.out.write_all(meta.dump().as_bytes())?;
        }
        self.out.write_all(b"}")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// [`crate::TraceSink`] adapter around [`PerfettoWriter`]. The first I/O
/// error is stored and writing stops; [`PerfettoSink::finish`] surfaces it.
pub struct PerfettoSink<W: Write> {
    writer: Option<PerfettoWriter<W>>,
    error: Option<io::Error>,
}

impl<W: Write> std::fmt::Debug for PerfettoSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerfettoSink")
            .field("live", &self.writer.is_some())
            .field("error", &self.error)
            .finish()
    }
}

impl<W: Write> PerfettoSink<W> {
    pub fn new(out: W) -> io::Result<Self> {
        Ok(PerfettoSink {
            writer: Some(PerfettoWriter::new(out)?),
            error: None,
        })
    }

    /// Closes the trace document. Returns the first error hit while
    /// streaming, if any.
    pub fn finish(self, metadata: Option<Json>) -> io::Result<W> {
        if let Some(err) = self.error {
            return Err(err);
        }
        match self.writer {
            Some(w) => w.finish(metadata),
            None => Err(io::Error::other("writer already failed")),
        }
    }
}

impl<W: Write> crate::TraceSink for PerfettoSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        if let Some(w) = &mut self.writer {
            if let Err(e) = w.event(ev) {
                self.error = Some(e);
                self.writer = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{MemKind, PrmEnd};
    use crate::TraceSink;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PrmEnter {
                cycle: 100,
                hslr_pc: 0x40,
                lanes: 16,
            },
            TraceEvent::SvrChain {
                cycle: 101,
                pc: 0x44,
                lanes: 16,
            },
            TraceEvent::SrfRecycle { cycle: 102 },
            // Two overlapping DRAM reads — must land on distinct rows.
            TraceEvent::Dram {
                enter: 110,
                leave: 200,
                write: false,
            },
            TraceEvent::Dram {
                enter: 120,
                leave: 210,
                write: false,
            },
            TraceEvent::MshrAlloc {
                cycle: 110,
                line: 0x1000,
                fill_at: 200,
            },
            TraceEvent::MshrCoalesce {
                cycle: 115,
                line: 0x1000,
            },
            TraceEvent::MshrRetire {
                cycle: 200,
                line: 0x1000,
            },
            TraceEvent::Mem {
                start: 110,
                complete: 200,
                addr: 0x1008,
                level: MemLevel::Dram,
                kind: MemKind::DemandLoad,
                pc: 4,
                miss: true,
            },
            TraceEvent::Mem {
                start: 111,
                complete: 114,
                addr: 0x2000,
                level: MemLevel::L1,
                kind: MemKind::DemandLoad,
                pc: 5,
                miss: false,
            },
            TraceEvent::TlbWalk {
                cycle: 109,
                done: 130,
                pc: 4,
            },
            TraceEvent::PrmExit {
                cycle: 205,
                reason: PrmEnd::Hslr,
            },
        ]
    }

    fn write_sample(metadata: Option<Json>) -> Json {
        let mut w = PerfettoWriter::new(Vec::new()).expect("header");
        for ev in sample_events() {
            w.event(&ev).expect("event");
        }
        let bytes = w.finish(metadata).expect("finish");
        Json::parse(std::str::from_utf8(&bytes).expect("utf8")).expect("valid JSON")
    }

    #[test]
    fn document_is_valid_json_with_trace_events() {
        let doc = write_sample(None);
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        assert_eq!(
            doc.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }

    #[test]
    fn prm_round_becomes_balanced_begin_end_pair() {
        let doc = write_sample(None);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(phase("B"), 1);
        assert_eq!(phase("E"), 1);
        // chain + recycle + coalesce instants
        assert_eq!(phase("i"), 3);
    }

    #[test]
    fn overlapping_dram_spans_stack_on_distinct_rows() {
        let doc = write_sample(None);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let dram_tids: Vec<u64> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str) == Some("dram_rd")
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .filter_map(|e| e.get("tid").and_then(Json::as_u64))
            .collect();
        assert_eq!(dram_tids.len(), 2);
        assert_ne!(dram_tids[0], dram_tids[1], "overlap must use two rows");
    }

    #[test]
    fn l1_hits_are_not_rendered() {
        let doc = write_sample(None);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(events
            .iter()
            .all(|e| e.get("name").and_then(Json::as_str) != Some("load L1")));
        // ...but the DRAM-level miss is.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("load DRAM")));
    }

    #[test]
    fn counter_samples_are_sorted_and_return_to_zero() {
        let doc = write_sample(None);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let mshr: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("MSHR occupancy"))
            .map(|e| {
                (
                    e.get("ts").and_then(Json::as_u64).unwrap(),
                    e.get("args")
                        .and_then(|a| a.get("occ"))
                        .and_then(Json::as_u64)
                        .unwrap(),
                )
            })
            .collect();
        assert!(!mshr.is_empty());
        assert!(mshr.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by ts");
        assert_eq!(mshr.last().unwrap().1, 0, "occupancy drains to zero");
        assert!(mshr.iter().any(|&(_, occ)| occ > 0));
    }

    #[test]
    fn metadata_is_attached_verbatim() {
        let meta = Json::Obj(vec![("workload".into(), Json::str("PR_KR"))]);
        let doc = write_sample(Some(meta.clone()));
        assert_eq!(doc.get("metadata"), Some(&meta));
    }

    #[test]
    fn sink_adapter_streams_and_finishes() {
        let mut sink = PerfettoSink::new(Vec::new()).expect("new");
        for ev in sample_events() {
            sink.emit(&ev);
        }
        let bytes = sink.finish(None).expect("finish");
        assert!(Json::parse(std::str::from_utf8(&bytes).unwrap()).is_ok());
    }

    #[test]
    fn trace_event_records_round_trip_through_json() {
        for ev in sample_events() {
            let doc = ev.to_json();
            let text = doc.dump();
            let back = TraceEvent::from_json(&Json::parse(&text).expect("parses"))
                .unwrap_or_else(|| panic!("decodes: {text}"));
            assert_eq!(back, ev, "round trip of {text}");
        }
    }
}
