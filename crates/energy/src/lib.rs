//! # svr-energy — McPAT-style event-based energy model
//!
//! The paper evaluates power/energy with McPAT v1.0 at 22 nm (§V). McPAT is
//! an analytical model: dynamic energy per microarchitectural event plus
//! static (leakage + clock) power integrated over runtime, summed for the
//! whole system (SoC + DRAM). This crate reproduces that accounting
//! structure with per-event constants anchored to the two absolute numbers
//! the paper reports (§VI-B): the in-order core averages ≈0.12 W and the
//! out-of-order core ≈1.01 W on the irregular suite.
//!
//! # Examples
//!
//! ```
//! use svr_energy::{EnergyModel, EnergyInput, CoreKind};
//!
//! let model = EnergyModel::default();
//! let input = EnergyInput {
//!     cycles: 2_000_000,
//!     retired: 200_000,
//!     issued_uops: 200_000,
//!     svr_lanes: 0,
//!     l1_accesses: 60_000,
//!     l2_accesses: 20_000,
//!     dram_lines: 15_000,
//!     core: CoreKind::InOrder,
//! };
//! let e = model.energy(&input);
//! assert!(e.total_nj() > 0.0);
//! assert!(e.nj_per_inst(input.retired) > 0.0);
//! ```

/// Which core's power profile applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// The 3-wide in-order core (with or without SVR/IMP attached).
    InOrder,
    /// The 3-wide out-of-order core.
    OutOfOrder,
}

/// Per-event energies (pJ) and static powers (W) for the 22 nm-ish model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Core clock (GHz), to convert cycles into seconds.
    pub freq_ghz: f64,
    /// Front-end + in-order issue + RF + ALU energy per issued µop.
    pub inorder_uop_pj: f64,
    /// Rename/RS/ROB/wakeup-inclusive energy per µop on the OoO core.
    pub ooo_uop_pj: f64,
    /// Extra energy per SVR transient lane (SVU copy generation + SRF
    /// access); lanes also pay `inorder_uop_pj` as they use the real pipe.
    pub svr_lane_pj: f64,
    /// Energy per L1 access.
    pub l1_access_pj: f64,
    /// Energy per L2 access.
    pub l2_access_pj: f64,
    /// Energy per DRAM line transfer (activate+IO for 64 B).
    pub dram_line_pj: f64,
    /// In-order core static power (leakage + clock), W.
    pub inorder_static_w: f64,
    /// OoO core static power, W.
    pub ooo_static_w: f64,
    /// Uncore (L2 + interconnect) static power, W.
    pub uncore_static_w: f64,
    /// DRAM background power, W.
    pub dram_static_w: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            freq_ghz: 2.0,
            inorder_uop_pj: 35.0,
            ooo_uop_pj: 260.0,
            svr_lane_pj: 12.0,
            l1_access_pj: 22.0,
            l2_access_pj: 60.0,
            dram_line_pj: 12_000.0,
            inorder_static_w: 0.055,
            ooo_static_w: 0.82,
            uncore_static_w: 0.12,
            dram_static_w: 0.45,
        }
    }
}

/// Event counts for one run, assembled by the simulator driver from
/// `CoreStats` and `MemStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyInput {
    /// Total cycles.
    pub cycles: u64,
    /// Architectural instructions retired.
    pub retired: u64,
    /// All µops issued, including SVR transient lanes.
    pub issued_uops: u64,
    /// SVR transient lanes (subset of `issued_uops`).
    pub svr_lanes: u64,
    /// L1-D accesses (demand + prefetch fills).
    pub l1_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// DRAM line transfers (reads + writebacks).
    pub dram_lines: u64,
    /// Core profile.
    pub core: CoreKind,
}

/// Energy decomposition in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core dynamic energy (issue, RF, ALUs, SVU/SRF).
    pub core_dynamic_nj: f64,
    /// Cache dynamic energy (L1 + L2).
    pub cache_dynamic_nj: f64,
    /// DRAM dynamic energy.
    pub dram_dynamic_nj: f64,
    /// Static (leakage + background) energy over the runtime.
    pub static_nj: f64,
}

impl EnergyBreakdown {
    /// Total whole-system energy.
    pub fn total_nj(&self) -> f64 {
        self.core_dynamic_nj + self.cache_dynamic_nj + self.dram_dynamic_nj + self.static_nj
    }

    /// Energy per committed instruction (Fig. 12's metric).
    pub fn nj_per_inst(&self, retired: u64) -> f64 {
        if retired == 0 {
            0.0
        } else {
            self.total_nj() / retired as f64
        }
    }
}

/// The energy model (see crate docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model with custom parameters.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Computes the whole-system energy for one run.
    pub fn energy(&self, input: &EnergyInput) -> EnergyBreakdown {
        let p = &self.params;
        let uop_pj = match input.core {
            CoreKind::InOrder => p.inorder_uop_pj,
            CoreKind::OutOfOrder => p.ooo_uop_pj,
        };
        let core_dynamic_nj =
            (input.issued_uops as f64 * uop_pj + input.svr_lanes as f64 * p.svr_lane_pj) / 1000.0;
        let cache_dynamic_nj = (input.l1_accesses as f64 * p.l1_access_pj
            + input.l2_accesses as f64 * p.l2_access_pj)
            / 1000.0;
        let dram_dynamic_nj = input.dram_lines as f64 * p.dram_line_pj / 1000.0;
        let seconds = input.cycles as f64 / (p.freq_ghz * 1e9);
        let core_static = match input.core {
            CoreKind::InOrder => p.inorder_static_w,
            CoreKind::OutOfOrder => p.ooo_static_w,
        };
        let static_nj = (core_static + p.uncore_static_w + p.dram_static_w) * seconds * 1e9;
        EnergyBreakdown {
            core_dynamic_nj,
            cache_dynamic_nj,
            dram_dynamic_nj,
            static_nj,
        }
    }

    /// Average core power (dynamic + core static) over a run, in watts —
    /// the §VI-B headline metric (0.12 W in-order, 1.01 W OoO).
    pub fn core_power_w(&self, input: &EnergyInput) -> f64 {
        let e = self.energy(input);
        let seconds = input.cycles as f64 / (self.params.freq_ghz * 1e9);
        if seconds == 0.0 {
            return 0.0;
        }
        let core_static = match input.core {
            CoreKind::InOrder => self.params.inorder_static_w,
            CoreKind::OutOfOrder => self.params.ooo_static_w,
        };
        e.core_dynamic_nj / 1e9 / seconds + core_static
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A memory-bound irregular profile: CPI ≈ 7 on OoO, ≈ 18 in-order.
    fn profile(core: CoreKind, cpi: f64) -> EnergyInput {
        let retired = 1_000_000u64;
        EnergyInput {
            cycles: (retired as f64 * cpi) as u64,
            retired,
            issued_uops: retired,
            svr_lanes: 0,
            l1_accesses: retired / 3,
            l2_accesses: retired / 12,
            dram_lines: retired / 18,
            core,
        }
    }

    #[test]
    fn core_power_anchors_match_paper() {
        let m = EnergyModel::default();
        let ino = m.core_power_w(&profile(CoreKind::InOrder, 12.0));
        let ooo = m.core_power_w(&profile(CoreKind::OutOfOrder, 4.0));
        // §VI-B: 0.12 W and 1.01 W on average.
        assert!((0.05..0.25).contains(&ino), "in-order power {ino:.3} W");
        assert!((0.7..1.4).contains(&ooo), "OoO power {ooo:.3} W");
    }

    #[test]
    fn faster_run_uses_less_static_energy() {
        let m = EnergyModel::default();
        let slow = m.energy(&profile(CoreKind::InOrder, 18.0));
        let fast = m.energy(&profile(CoreKind::InOrder, 6.0));
        assert!(fast.static_nj < slow.static_nj / 2.5);
        assert_eq!(fast.dram_dynamic_nj, slow.dram_dynamic_nj);
    }

    #[test]
    fn svr_lanes_add_core_energy_only() {
        let m = EnergyModel::default();
        let base = profile(CoreKind::InOrder, 6.0);
        let with_svr = EnergyInput {
            issued_uops: base.issued_uops * 2,
            svr_lanes: base.issued_uops,
            ..base
        };
        let e0 = m.energy(&base);
        let e1 = m.energy(&with_svr);
        assert!(e1.core_dynamic_nj > e0.core_dynamic_nj);
        assert_eq!(e1.dram_dynamic_nj, e0.dram_dynamic_nj);
        // Transient execution is cheap relative to the whole system (paper:
        // 22% of core power, which is itself a small share).
        assert!(e1.total_nj() < e0.total_nj() * 1.5);
    }

    #[test]
    fn svr_halves_energy_versus_inorder_shape() {
        // SVR: 3.2x faster, 2x µops, same DRAM traffic.
        let m = EnergyModel::default();
        let ino = profile(CoreKind::InOrder, 16.0);
        let svr = EnergyInput {
            cycles: (ino.cycles as f64 / 3.2) as u64,
            issued_uops: ino.issued_uops * 2,
            svr_lanes: ino.issued_uops,
            ..ino
        };
        let r = m.energy(&svr).total_nj() / m.energy(&ino).total_nj();
        // Paper Fig. 1: SVR needs ~53% less energy than in-order.
        assert!((0.3..0.7).contains(&r), "ratio {r:.2}");
    }

    #[test]
    fn ooo_beats_inorder_energy_when_fast_enough() {
        let m = EnergyModel::default();
        let ino = m.energy(&profile(CoreKind::InOrder, 18.0)).total_nj();
        let ooo = m.energy(&profile(CoreKind::OutOfOrder, 6.0)).total_nj();
        assert!(ooo < ino, "ooo {ooo:.0} vs ino {ino:.0}");
    }

    #[test]
    fn zero_cycles_is_safe() {
        let m = EnergyModel::default();
        let mut i = profile(CoreKind::InOrder, 1.0);
        i.cycles = 0;
        assert_eq!(m.core_power_w(&i), 0.0);
        assert_eq!(m.energy(&i).static_nj, 0.0);
        assert_eq!(m.energy(&i).nj_per_inst(0), 0.0);
    }
}
