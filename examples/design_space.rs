//! Design-space exploration on one workload: sweep the SVR vector length,
//! SRF size and loop-bound mode, printing speedup and hardware cost
//! (Table II bits) so the performance/area trade-off of §IV-C is visible.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use svr::core::{bit_budget, LoopBoundMode, SvrConfig};
use svr::sim::{run_kernel, RunOptions, SimConfig};
use svr::workloads::{Kernel, Scale};

fn main() {
    let kernel = Kernel::Kangaroo;
    let scale = Scale::Small;
    let base = run_kernel(kernel, scale, &SimConfig::inorder(), &RunOptions::default()).expect("valid config");
    println!(
        "Kangaroo (two-level indirection), in-order CPI {:.2}",
        base.cpi()
    );
    println!();
    println!(
        "{:>4} {:>4} {:12} {:>9} {:>9} {:>9}",
        "N", "K", "bounds", "CPI", "speedup", "KiB"
    );
    for n in [8usize, 16, 32, 64, 128] {
        for (k, mode) in [(8usize, LoopBoundMode::Tournament)] {
            let cfg = SimConfig::svr_with(SvrConfig {
                srf_entries: k,
                loop_bound_mode: mode,
                ..SvrConfig::with_length(n)
            });
            let r = run_kernel(kernel, scale, &cfg, &RunOptions::default()).expect("valid config");
            assert!(r.verified);
            println!(
                "{:>4} {:>4} {:12} {:>9.2} {:>8.2}x {:>9.2}",
                n,
                k,
                "tournament",
                r.cpi(),
                base.core.cycles as f64 / r.core.cycles as f64,
                bit_budget(n as u64, k as u64).total_kib(),
            );
        }
    }
    println!();
    println!(
        "{:>4} {:>4} {:12} {:>9} {:>9}",
        "N", "K", "bounds", "CPI", "speedup"
    );
    for mode in [
        LoopBoundMode::Maxlength,
        LoopBoundMode::LbdWait,
        LoopBoundMode::LbdCv,
        LoopBoundMode::Ewma,
        LoopBoundMode::Tournament,
    ] {
        let cfg = SimConfig::svr_with(SvrConfig {
            loop_bound_mode: mode,
            ..SvrConfig::with_length(16)
        });
        let r = run_kernel(kernel, scale, &cfg, &RunOptions::default()).expect("valid config");
        println!(
            "{:>4} {:>4} {:12} {:>9.2} {:>8.2}x",
            16,
            8,
            format!("{mode:?}"),
            r.cpi(),
            base.core.cycles as f64 / r.core.cycles as f64,
        );
    }
}
