//! Database hash-join probes with bucket sizes 2 and 8 — the workload pair
//! from §V where SVR's mask-only control-flow handling shows its limit:
//! HJ2 speeds up nicely while HJ8 (divergent early-exit scans) does not
//! (§VI-D "Lockstep Coupling").
//!
//! ```sh
//! cargo run --release --example hashjoin_probe
//! ```

use svr::sim::{run_kernel, RunOptions, SimConfig};
use svr::workloads::{Kernel, Scale};

fn main() {
    let scale = Scale::Small;
    for bucket in [2usize, 8] {
        let kernel = Kernel::HashJoin(bucket);
        let base = run_kernel(kernel, scale, &SimConfig::inorder(), &RunOptions::default()).expect("valid config");
        let svr = run_kernel(kernel, scale, &SimConfig::svr(16), &RunOptions::default()).expect("valid config");
        assert!(base.verified && svr.verified);
        let speedup = base.core.cycles as f64 / svr.core.cycles as f64;
        println!(
            "HJ{bucket}: in-order CPI {:.2} -> SVR-16 CPI {:.2}  (speedup {:.2}x, \
             {} lanes masked off by divergence)",
            base.cpi(),
            svr.cpi(),
            speedup,
            svr.core.svr.masked_lanes,
        );
    }
    println!();
    println!(
        "The bucket-8 probe diverges lane-by-lane on the early exit, so SVR's \
         single control-flow mask (§IV-B1) cancels most transient lanes — the \
         paper reports the same: no speedup on HJ8."
    );
}
