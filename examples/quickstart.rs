//! Quickstart: assemble a tiny stride-indirect loop, run it on the in-order
//! baseline and on the same core with SVR attached, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use svr::core::{InOrderConfig, InOrderCore, SvrConfig};
use svr::isa::{AluOp, ArchState, Assembler, Cond, DataMemory, Reg};
use svr::mem::{MemConfig, MemImage};

fn main() {
    // Build the data: an index array and a data array spread over cache
    // lines, the classic A[B[i]] pattern from §II of the paper.
    let n = 40_000u64;
    let mut image = MemImage::new();
    let idx: Vec<u64> = (0..n).map(|i| (i * 7919 + 13) % n).collect();
    let idx_base = image.alloc_array(&idx);
    let data_base = image.alloc_words(n * 8);
    for k in 0..n {
        image.write_u64(data_base + k * 64, k * 3);
    }

    // Assemble: for (i = 0; i < n; i++) sum += data[idx[i] * 8];
    let (bi, bd, i, t, v, sum, bound) = (
        Reg::new(1),
        Reg::new(2),
        Reg::new(3),
        Reg::new(4),
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
    );
    let mut asm = Assembler::new("quickstart");
    let top = asm.label();
    asm.bind(top);
    asm.ldx(t, bi, i, 3); //       t = idx[i]        (striding load)
    asm.alui(AluOp::Sll, t, t, 6); // element -> 64-byte slot
    asm.alu(AluOp::Add, v, bd, t);
    asm.ld(v, v, 0); //            v = data[t]       (indirect load)
    asm.alu(AluOp::Add, sum, sum, v);
    asm.alui(AluOp::Add, i, i, 1);
    asm.cmp(i, bound);
    asm.b(Cond::Ltu, top);
    asm.halt();
    let program = asm.finish();

    let init = |arch: &mut ArchState| {
        arch.set_reg(bi, idx_base);
        arch.set_reg(bd, data_base);
        arch.set_reg(bound, n);
    };

    // Baseline in-order run.
    let mut arch = ArchState::new();
    init(&mut arch);
    let mut img = image.clone();
    let mut base = InOrderCore::new(InOrderConfig::default(), MemConfig::default());
    base.run(&program, &mut img, &mut arch, u64::MAX).unwrap();
    let base_sum = arch.reg(sum);

    // Same core + SVR.
    let mut arch = ArchState::new();
    init(&mut arch);
    let mut img = image.clone();
    let mut svr_core = InOrderCore::with_svr(
        InOrderConfig::default(),
        MemConfig::default(),
        SvrConfig::default(),
    );
    svr_core.run(&program, &mut img, &mut arch, u64::MAX).unwrap();

    assert_eq!(arch.reg(sum), base_sum, "SVR must not change architecture");
    println!(
        "in-order : {:>12} cycles (CPI {:.2})",
        base.stats().cycles,
        base.stats().cpi()
    );
    println!(
        "SVR-16   : {:>12} cycles (CPI {:.2})",
        svr_core.stats().cycles,
        svr_core.stats().cpi()
    );
    println!(
        "speedup  : {:.2}x  | PRM rounds: {}  transient lanes: {}  prefetch accuracy: {:.1}%",
        base.stats().cycles as f64 / svr_core.stats().cycles as f64,
        svr_core.stats().svr.prm_rounds,
        svr_core.stats().svr.lanes,
        svr_core.mem_stats().svr.accuracy().unwrap_or(f64::NAN) * 100.0
    );
}
