//! PageRank on a Kronecker graph (Listing 1 of the paper) across all four
//! core configurations, printing CPI, DRAM traffic and energy.
//!
//! ```sh
//! cargo run --release --example pagerank_speedup
//! ```

use svr::sim::{run_kernel, RunOptions, SimConfig};
use svr::workloads::{GraphInput, Kernel, Scale};

fn main() {
    let kernel = Kernel::Pr(GraphInput::Kr);
    let scale = Scale::Small;
    println!(
        "PageRank on a Kronecker graph ({} vertices, edge factor {}):",
        scale.nodes(),
        scale.edge_factor()
    );
    println!(
        "{:8} {:>8} {:>12} {:>12} {:>12}",
        "config", "CPI", "DRAM lines", "nJ/instr", "SVR accuracy"
    );
    for cfg in [
        SimConfig::inorder(),
        SimConfig::imp(),
        SimConfig::ooo(),
        SimConfig::svr(16),
        SimConfig::svr(64),
    ] {
        let r = run_kernel(kernel, scale, &cfg, &RunOptions::default()).expect("valid config");
        assert!(r.verified, "architectural check failed");
        println!(
            "{:8} {:>8.2} {:>12} {:>12.2} {:>12}",
            r.config,
            r.cpi(),
            r.mem.dram_reads() + r.mem.writebacks,
            r.nj_per_inst(),
            r.svr_accuracy()
                .map(|a| format!("{:.1}%", a * 100.0))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
